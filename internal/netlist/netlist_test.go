package netlist

import (
	"math/rand"
	"testing"
)

// fullAdder builds a 1-bit full adder: 2 XOR, 2 AND, 1 OR.
func fullAdder() *Netlist {
	n := New("fa", 3) // a, b, cin
	axb := n.Add(XOR, 0, 1)
	sum := n.Add(XOR, axb, 2)
	c1 := n.Add(AND, 0, 1)
	c2 := n.Add(AND, axb, 2)
	cout := n.Add(OR, c1, c2)
	n.MarkOutput(sum)
	n.MarkOutput(cout)
	return n
}

func TestCountsAndNets(t *testing.T) {
	n := fullAdder()
	c := n.Counts()
	if c[XOR] != 2 || c[AND] != 2 || c[OR] != 1 {
		t.Fatalf("counts = %v", c)
	}
	if n.NumNets() != 3+5 {
		t.Fatalf("nets = %d", n.NumNets())
	}
}

func TestDepths(t *testing.T) {
	n := fullAdder()
	d := n.Depths()
	// Gate order: axb(1), sum(2), c1(1), c2(2), cout(3).
	want := []int{1, 2, 1, 2, 3}
	for i, w := range want {
		if d[i] != w {
			t.Fatalf("depth[%d] = %d, want %d (%v)", i, d[i], w, d)
		}
	}
	if n.PipelineDepth() != 3 {
		t.Fatalf("pipeline depth = %d", n.PipelineDepth())
	}
}

func TestFanouts(t *testing.T) {
	n := New("fan", 1)
	var outs []int
	for i := 0; i < 5; i++ {
		outs = append(outs, n.Add(NOT, 0))
	}
	f := n.Fanouts()
	if f[0] != 5 {
		t.Fatalf("fanout of input = %d", f[0])
	}
	for _, o := range outs {
		if f[o] != 0 {
			t.Fatalf("unused output has fanout %d", f[o])
		}
	}
}

func TestUndefinedNetPanics(t *testing.T) {
	n := New("bad", 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on undefined net")
		}
	}()
	n.Add(AND, 0, 99)
}

func TestConvertSFQFullAdder(t *testing.T) {
	n := fullAdder()
	s := n.ConvertSFQ()
	if s.LogicGates != 5 {
		t.Fatalf("logic gates = %d", s.LogicGates)
	}
	// Balancing: sum reads axb(d1) and cin(d0) at depth 2: cin needs 1 DFF.
	// c2 reads axb(d1), cin(d0): cin needs 1. cout reads c1(d1), c2(d2):
	// c1 needs 1. Total 3 DFFs.
	if s.BalanceDFFs != 3 {
		t.Fatalf("balance DFFs = %d, want 3", s.BalanceDFFs)
	}
	// Data splitters: nets with fanout>1: a(2), b(2), cin(2), axb(2) ->
	// 1 splitter each = 4.
	if s.DataSplitters != 4 {
		t.Fatalf("data splitters = %d, want 4", s.DataSplitters)
	}
	// Clock tree spans 5 logic + 3 DFFs = 8 clocked -> 7 splitters.
	if s.ClockSplitters != 7 {
		t.Fatalf("clock splitters = %d, want 7", s.ClockSplitters)
	}
	if s.PipelineDepth != 3 {
		t.Fatalf("depth = %d", s.PipelineDepth)
	}
	if s.TotalGates() != 5+3+4+7+s.PTLBuffers {
		t.Fatal("total mismatch")
	}
}

func TestConvertSFQBalancedCircuitNeedsNoDFFs(t *testing.T) {
	// A tree where all inputs arrive at the same depth needs no balancing.
	n := New("tree", 4)
	a := n.Add(AND, 0, 1)
	b := n.Add(AND, 2, 3)
	n.MarkOutput(n.Add(OR, a, b))
	s := n.ConvertSFQ()
	if s.BalanceDFFs != 0 {
		t.Fatalf("balanced tree got %d DFFs", s.BalanceDFFs)
	}
}

func TestConvertSFQRandomInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		n := New("rand", 4+r.Intn(4))
		for g := 0; g < 30; g++ {
			a := r.Intn(n.NumNets())
			b := r.Intn(n.NumNets())
			n.Add([]Kind{AND, OR, XOR}[r.Intn(3)], a, b)
		}
		s := n.ConvertSFQ()
		if s.LogicGates != 30 {
			t.Fatalf("logic gates = %d", s.LogicGates)
		}
		if s.BalanceDFFs < 0 || s.ClockSplitters < 29 {
			t.Fatalf("suspicious conversion: %+v", s)
		}
		if s.PipelineDepth < 1 || s.PipelineDepth > 30 {
			t.Fatalf("depth out of range: %d", s.PipelineDepth)
		}
		if s.TotalGates() < 30 {
			t.Fatal("total too small")
		}
	}
}

func TestStorageGatesCounted(t *testing.T) {
	n := New("mem", 2)
	d := n.Add(DFF, 0)
	nd := n.Add(NDRO, 1)
	n.MarkOutput(n.Add(AND, d, nd))
	s := n.ConvertSFQ()
	if s.StorageGates != 2 {
		t.Fatalf("storage gates = %d", s.StorageGates)
	}
}

func BenchmarkConvertSFQ(b *testing.B) {
	// A mask-generator-sized circuit.
	n := New("bench", 64)
	r := rand.New(rand.NewSource(1))
	for g := 0; g < 5000; g++ {
		a := r.Intn(n.NumNets())
		c := r.Intn(n.NumNets())
		n.Add([]Kind{AND, OR, XOR}[r.Intn(3)], a, c)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.ConvertSFQ()
	}
}
