// Package netlist provides the gate-level intermediate representation the
// XQ-estimator synthesizes and analyzes. It substitutes for the paper's
// Verilog + Yosys/Design Compiler flow (Fig. 9): circuits are built as
// gate graphs, then transformed for the RSFQ logic family by
//
//  1. DFS depth analysis and D-flip-flop insertion to balance every
//     gate's input path depths (RSFQ logic is gate-level pipelined);
//  2. fanout-2 splitter-tree insertion for both data nets and the clock
//     distribution (RSFQ gates drive a single output pulse);
//  3. timing adjustment, modeled as clock/data skew elimination, after
//     which fmax = 1 / max(CCT_min,gate) per the paper's Eq. (1).
package netlist

import "fmt"

// Kind enumerates gate types. The RSFQ family shares the CMOS-like
// combinational set and adds DFF/NDRO storage and SPLIT fan-out elements.
type Kind int

// Gate kinds.
const (
	AND Kind = iota
	OR
	XOR
	NOT
	MUX  // 2:1 multiplexer (3 inputs)
	DFF  // clocked D flip-flop
	NDRO // non-destructive readout cell (RSFQ storage)
	SPLIT
	BUF // PTL driver / buffer
	NumKinds
)

var kindNames = [...]string{"AND", "OR", "XOR", "NOT", "MUX", "DFF", "NDRO", "SPLIT", "BUF"}

// String names the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("K%d", int(k))
}

// clocked reports whether the RSFQ implementation of the gate is clocked
// (participates in the gate-level pipeline and the clock tree).
func (k Kind) clocked() bool {
	switch k {
	case AND, OR, XOR, NOT, MUX, DFF, NDRO:
		return true
	case SPLIT, BUF:
		// Passive fanout/repeater elements sit outside the clock tree.
		return false
	}
	return false
}

// Gate is one node of the netlist graph.
type Gate struct {
	Kind   Kind
	Inputs []int // net ids
	Output int   // net id
}

// Netlist is a combinational/sequential gate graph. Nets 0..NumInputs-1
// are primary inputs; every gate output allocates a fresh net.
type Netlist struct {
	Name      string
	NumInputs int
	Gates     []Gate
	Outputs   []int // primary output nets
	nextNet   int
}

// New creates an empty netlist with n primary inputs.
func New(name string, inputs int) *Netlist {
	return &Netlist{Name: name, NumInputs: inputs, nextNet: inputs}
}

// Add appends a gate reading the given nets and returns its output net.
func (n *Netlist) Add(k Kind, inputs ...int) int {
	for _, in := range inputs {
		if in < 0 || in >= n.nextNet {
			//xqlint:ignore nopanic API-misuse guard: nets are only produced by Add/Input on the same netlist
			panic(fmt.Sprintf("netlist: gate %v reads undefined net %d", k, in))
		}
	}
	out := n.nextNet
	n.nextNet++
	n.Gates = append(n.Gates, Gate{Kind: k, Inputs: append([]int(nil), inputs...), Output: out})
	return out
}

// MarkOutput declares a primary output.
func (n *Netlist) MarkOutput(net int) { n.Outputs = append(n.Outputs, net) }

// NumNets returns the total net count.
func (n *Netlist) NumNets() int { return n.nextNet }

// Counts tallies gates by kind.
func (n *Netlist) Counts() [NumKinds]int {
	var out [NumKinds]int
	for _, g := range n.Gates {
		out[g.Kind]++
	}
	return out
}

// driverOf maps each net to the index of the gate driving it (-1 for
// primary inputs).
func (n *Netlist) driverOf() []int {
	out := make([]int, n.nextNet)
	for i := range out {
		out[i] = -1
	}
	for gi, g := range n.Gates {
		out[g.Output] = gi
	}
	return out
}

// Depths computes each gate's pipeline depth: one plus the maximum depth
// of its input drivers (primary inputs have depth 0). This is the DFS
// step of the paper's SFQ-specific gate insertion.
func (n *Netlist) Depths() []int {
	drivers := n.driverOf()
	depth := make([]int, len(n.Gates))
	for i := range depth {
		depth[i] = -1
	}
	var visit func(gi int) int
	visit = func(gi int) int {
		if depth[gi] >= 0 {
			return depth[gi]
		}
		depth[gi] = 0 // break cycles defensively (latch loops)
		max := 0
		for _, in := range n.Gates[gi].Inputs {
			if d := drivers[in]; d >= 0 {
				if v := visit(d) + 1; v > max {
					max = v
				}
			} else if 1 > max {
				max = 1
			}
		}
		depth[gi] = max
		return max
	}
	for gi := range n.Gates {
		visit(gi)
	}
	return depth
}

// PipelineDepth is the maximum gate depth (the number of RSFQ pipeline
// stages after balancing).
func (n *Netlist) PipelineDepth() int {
	max := 0
	for _, d := range n.Depths() {
		if d > max {
			max = d
		}
	}
	return max
}

// Fanouts returns the number of sinks per net (gate inputs plus primary
// outputs).
func (n *Netlist) Fanouts() []int {
	out := make([]int, n.nextNet)
	for _, g := range n.Gates {
		for _, in := range g.Inputs {
			out[in]++
		}
	}
	for _, o := range n.Outputs {
		out[o]++
	}
	return out
}

// SFQStats summarizes the RSFQ-converted circuit.
type SFQStats struct {
	// Gate counts after conversion.
	LogicGates     int // clocked logic (AND/OR/XOR/NOT/MUX)
	StorageGates   int // DFF/NDRO present before balancing
	BalanceDFFs    int // DFFs inserted for path balancing
	DataSplitters  int // fanout-2 splitters on data nets
	ClockSplitters int // fanout-2 splitters in the clock tree
	PTLBuffers     int // timing-adjustment wire elements
	PipelineDepth  int
}

// TotalGates is every element in the converted netlist.
func (s SFQStats) TotalGates() int {
	return s.LogicGates + s.StorageGates + s.BalanceDFFs + s.DataSplitters + s.ClockSplitters + s.PTLBuffers
}

// ConvertSFQ performs the paper's SFQ-specific gate insertion on the
// netlist and returns the resulting element counts:
//
//   - balancing DFFs: for every gate input whose driver is shallower than
//     the gate's deepest input, one DFF per missing pipeline stage;
//   - data splitter trees: a net with fanout f needs f-1 fanout-2
//     splitters;
//   - clock tree: every clocked element receives the clock through a
//     fanout-2 splitter tree (count-1 splitters), with one PTL buffer per
//     pipeline stage for skew alignment;
//   - PTL buffers: one per balancing DFF chain for the timing adjustment
//     step.
func (n *Netlist) ConvertSFQ() SFQStats {
	var s SFQStats
	depths := n.Depths()
	drivers := n.driverOf()

	clocked := 0
	for gi, g := range n.Gates {
		switch g.Kind {
		case DFF, NDRO:
			s.StorageGates++
		case SPLIT:
			s.DataSplitters++
		case BUF:
			s.PTLBuffers++
		default:
			s.LogicGates++
		}
		if g.Kind.clocked() {
			clocked++
		}
		// Path balancing: each input must arrive at depth[gi]-1.
		want := depths[gi] - 1
		for _, in := range g.Inputs {
			have := 0
			if d := drivers[in]; d >= 0 {
				have = depths[d]
			}
			if want > have {
				s.BalanceDFFs += want - have
				s.PTLBuffers++
			}
		}
	}
	clocked += s.BalanceDFFs // inserted DFFs are clocked too

	// Data splitter trees.
	for _, f := range n.Fanouts() {
		if f > 1 {
			s.DataSplitters += f - 1
		}
	}
	// Clock splitter tree over all clocked elements, plus per-stage skew
	// buffers.
	if clocked > 1 {
		s.ClockSplitters = clocked - 1
	}
	s.PipelineDepth = n.PipelineDepth()
	s.PTLBuffers += s.PipelineDepth
	return s
}
