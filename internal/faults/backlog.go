package faults

// BacklogTracker is the deterministic syndrome-buffer model shared by the
// fault injector and the streaming decoder: it tracks the rounds queued
// behind the decoder in excess of steady state and resolves overflow
// under the configured policy. It draws no randomness — callers decide
// *why* the backlog moves (a stall spike, a decode window over the ESM
// round budget); the tracker only accounts for it, so identical inputs
// always produce identical drop/backpressure schedules.
//
// Drop accounting matches the injector's original semantics bit-for-bit:
// drop-oldest overflow schedules drops at overflow time, but each drop is
// counted in Totals only when a later round consumes it (ConsumeDrop);
// backpressure rounds are counted at overflow time. The zero value is an
// unbounded buffer that never drops or backpressures.
type BacklogTracker struct {
	// Capacity is the buffer size in ESM rounds (0 = unbounded); Policy
	// selects the overflow behaviour.
	Capacity int    //xqlint:persistent configuration; Reset keeps it by documented contract
	Policy   Policy //xqlint:persistent configuration; Reset keeps it by documented contract

	backlog      int
	pendingDrops int
	totals       Totals
}

// NewBacklogTracker returns a tracker over a buffer of the given
// capacity in rounds (0 = unbounded) under the given overflow policy.
func NewBacklogTracker(capacityRounds int, policy Policy) BacklogTracker {
	return BacklogTracker{Capacity: capacityRounds, Policy: policy}
}

// Add queues n more rounds behind the decoder.
//
//xqlint:noalloc per-round accounting
func (t *BacklogTracker) Add(n int) {
	if n > 0 {
		t.backlog += n
	}
}

// Drain retires up to n queued rounds.
func (t *BacklogTracker) Drain(n int) {
	if n <= 0 || t.backlog == 0 {
		return
	}
	t.backlog -= n
	if t.backlog < 0 {
		t.backlog = 0
	}
}

// Overflow resolves any excess over the buffer capacity under the
// policy: drop-oldest schedules the excess as pending drops (consumed by
// the next ConsumeDrop calls), backpressure returns the excess as rounds
// the ESM schedule must idle (counted in Totals now).
func (t *BacklogTracker) Overflow() int {
	if t.Capacity <= 0 || t.backlog <= t.Capacity {
		return 0
	}
	excess := t.backlog - t.Capacity
	t.backlog = t.Capacity
	switch t.Policy {
	case PolicyDropOldest:
		t.pendingDrops += excess
		return 0
	case PolicyBackpressure:
		t.totals.BackpressureRounds += excess
		return excess
	}
	return 0
}

// ConsumeDrop consumes one scheduled drop, if any, counting it in
// Totals. Callers invoke it once per syndrome round; true means the
// round's detection events are lost.
func (t *BacklogTracker) ConsumeDrop() bool {
	if t.pendingDrops == 0 {
		return false
	}
	t.pendingDrops--
	t.totals.DroppedRounds++
	return true
}

// Backlog returns the rounds currently queued.
func (t *BacklogTracker) Backlog() int { return t.backlog }

// PendingDrops returns the drops scheduled but not yet consumed.
func (t *BacklogTracker) PendingDrops() int { return t.pendingDrops }

// Totals returns the accumulated drop/backpressure accounting.
func (t *BacklogTracker) Totals() Totals { return t.totals }

// Reset drains the buffer and clears the accounting, keeping the
// configuration.
//
//xqlint:noalloc plain field zeroing
func (t *BacklogTracker) Reset() {
	t.backlog = 0
	t.pendingDrops = 0
	t.totals = Totals{}
}
