package faults

import "testing"

func TestBacklogTrackerZeroValueIsUnbounded(t *testing.T) {
	var tr BacklogTracker
	tr.Add(1_000_000)
	if got := tr.Overflow(); got != 0 {
		t.Fatalf("unbounded Overflow() = %d, want 0", got)
	}
	if tr.ConsumeDrop() {
		t.Fatal("unbounded tracker scheduled a drop")
	}
	if tr.Backlog() != 1_000_000 {
		t.Fatalf("backlog = %d, want 1000000", tr.Backlog())
	}
}

func TestBacklogTrackerDrainFloorsAtZero(t *testing.T) {
	tr := NewBacklogTracker(10, PolicyDropOldest)
	tr.Add(3)
	tr.Drain(100)
	if tr.Backlog() != 0 {
		t.Fatalf("backlog = %d after over-drain, want 0", tr.Backlog())
	}
	tr.Drain(5) // draining an empty buffer is a no-op
	if tr.Backlog() != 0 {
		t.Fatalf("backlog = %d, want 0", tr.Backlog())
	}
}

func TestBacklogTrackerDropOldestCountsAtConsumption(t *testing.T) {
	tr := NewBacklogTracker(2, PolicyDropOldest)
	tr.Add(5)
	if got := tr.Overflow(); got != 0 {
		t.Fatalf("drop-oldest Overflow() = %d, want 0 backpressure", got)
	}
	if tr.PendingDrops() != 3 {
		t.Fatalf("pending drops = %d, want 3", tr.PendingDrops())
	}
	// Drops are scheduled but not yet counted: Totals must stay clean
	// until rounds actually consume them.
	if tot := tr.Totals(); tot.DroppedRounds != 0 {
		t.Fatalf("totals = %+v before consumption", tot)
	}
	dropped := 0
	for r := 0; r < 10; r++ {
		if tr.ConsumeDrop() {
			dropped++
		}
	}
	if dropped != 3 {
		t.Fatalf("consumed %d drops, want 3", dropped)
	}
	if tot := tr.Totals(); tot.DroppedRounds != 3 {
		t.Fatalf("totals = %+v, want 3 dropped rounds", tot)
	}
	if tr.Backlog() != 2 {
		t.Fatalf("backlog = %d after overflow, want clamped to capacity 2", tr.Backlog())
	}
}

func TestBacklogTrackerBackpressureCountsAtOverflow(t *testing.T) {
	tr := NewBacklogTracker(2, PolicyBackpressure)
	tr.Add(5)
	if got := tr.Overflow(); got != 3 {
		t.Fatalf("backpressure Overflow() = %d, want 3", got)
	}
	if tr.ConsumeDrop() {
		t.Fatal("backpressure policy scheduled a drop")
	}
	if tot := tr.Totals(); tot.BackpressureRounds != 3 || tot.DroppedRounds != 0 {
		t.Fatalf("totals = %+v", tot)
	}
}

func TestBacklogTrackerReset(t *testing.T) {
	tr := NewBacklogTracker(1, PolicyDropOldest)
	tr.Add(4)
	tr.Overflow()
	tr.ConsumeDrop()
	tr.Reset()
	if tr.Backlog() != 0 || tr.PendingDrops() != 0 || tr.Totals() != (Totals{}) {
		t.Fatalf("Reset left state: backlog=%d pending=%d totals=%+v",
			tr.Backlog(), tr.PendingDrops(), tr.Totals())
	}
	if tr.Capacity != 1 || tr.Policy != PolicyDropOldest {
		t.Fatal("Reset lost the configuration")
	}
}
