// Package faults implements the simulator's deterministic fault-injection
// layer: a seed-driven schedule of control-processor faults threaded
// through the cycle-level pipeline (internal/microarch) and the memory
// experiment (internal/core.LogicalErrorRateFaults), so degradation
// curves — logical error rate and success rate versus injected fault
// rate — can be measured end-to-end instead of only scored analytically.
//
// Three fault classes are modeled, mirroring the pressure points the
// paper's constraint analysis identifies (decode latency, syndrome
// buffering, cross-temperature transfer):
//
//   - decoder stalls: a per-window latency spike multiplying the EDU's
//     decode cycles, which backs syndromes up in the buffer;
//   - syndrome-buffer overflow: when the backlog exceeds the configured
//     capacity, either the oldest rounds are dropped (their detection
//     events never reach the EDU, so their errors go uncorrected) or the
//     ESM schedule backpressures (data qubits idle and decohere for the
//     excess rounds);
//   - cross-temperature link corruption: a per-round chance that the
//     QCI->EDU syndrome transfer is corrupted and must be retransmitted,
//     with bounded retries under exponential backoff; exhausting the
//     retry budget loses the round.
//
// Every draw comes from a dedicated xrand stream derived from the run
// seed, so identical (seed, Config) pairs reproduce identical fault
// schedules — the same determinism contract the rest of the simulator
// keeps (a property the xqlint determinism analyzer enforces and the
// regression tests pin bit-for-bit).
package faults

import (
	"fmt"

	"xqsim/internal/xrand"
)

// Policy selects how the syndrome buffer handles overflow.
type Policy int

// Overflow policies.
const (
	// PolicyDropOldest silently discards the oldest buffered rounds: the
	// control processor stays on schedule but the dropped rounds'
	// detection events are lost, so the errors they witnessed are never
	// corrected.
	PolicyDropOldest Policy = iota
	// PolicyBackpressure stalls the ESM schedule until the decoder
	// catches up: no syndromes are lost, but the data qubits idle and
	// accumulate decoherence for the excess rounds.
	PolicyBackpressure
	numPolicies
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case PolicyDropOldest:
		return "drop-oldest"
	case PolicyBackpressure:
		return "backpressure"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// ParsePolicy resolves a policy name ("drop-oldest" or "backpressure").
func ParsePolicy(s string) (Policy, error) {
	for p := Policy(0); p < numPolicies; p++ {
		if p.String() == s {
			return p, nil
		}
	}
	return 0, fmt.Errorf("faults: unknown overflow policy %q (want drop-oldest or backpressure)", s)
}

// Config describes the injected fault environment. The zero value
// injects nothing; Enabled reports whether any fault class is active.
type Config struct {
	// StallProb is the per-decode-window probability of a decoder stall
	// spike; StallFactor is the decode-cycle multiplier during a spike
	// (values <= 1 disable the class).
	StallProb   float64
	StallFactor float64

	// BufferRounds is the syndrome buffer's capacity in ESM rounds
	// (0 = unbounded); Policy selects the overflow behaviour.
	BufferRounds int
	Policy       Policy

	// LinkErrorProb is the per-round probability that the QCI->EDU
	// syndrome transfer is corrupted; LinkRetries bounds the retransmit
	// attempts per round (each retry redraws corruption and pays an
	// exponentially growing backoff). A round still corrupted after the
	// last retry is lost.
	LinkErrorProb float64
	LinkRetries   int
}

// Enabled reports whether the configuration injects any fault at all.
func (c Config) Enabled() bool {
	return (c.StallProb > 0 && c.StallFactor > 1) || c.LinkErrorProb > 0
}

// Validate rejects configurations the injector cannot honor.
func (c Config) Validate() error {
	if c.StallProb < 0 || c.StallProb > 1 {
		return fmt.Errorf("faults: stall probability %v outside [0,1]", c.StallProb)
	}
	if c.LinkErrorProb < 0 || c.LinkErrorProb > 1 {
		return fmt.Errorf("faults: link error probability %v outside [0,1]", c.LinkErrorProb)
	}
	if c.StallProb > 0 && c.StallFactor < 1 {
		return fmt.Errorf("faults: stall factor %v must be >= 1", c.StallFactor)
	}
	if c.BufferRounds < 0 {
		return fmt.Errorf("faults: buffer capacity %d rounds is negative", c.BufferRounds)
	}
	if c.LinkRetries < 0 {
		return fmt.Errorf("faults: link retry budget %d is negative", c.LinkRetries)
	}
	if c.Policy < 0 || c.Policy >= numPolicies {
		return fmt.Errorf("faults: unknown overflow policy %d", int(c.Policy))
	}
	return nil
}

// Totals accumulates the fault accounting of one run. The pipeline copies
// them into microarch.Metrics; LogicalErrorRateFaults sums them across
// trials (integer sums, so the reduction is order-independent and the
// totals stay deterministic under parallel scheduling).
type Totals struct {
	// StallCycles counts the extra EDU cycles injected by stall spikes.
	StallCycles uint64
	// StallWindows counts decode windows hit by a spike.
	StallWindows int
	// DroppedRounds counts syndrome rounds whose detection events were
	// lost (buffer overflow under drop-oldest, or link-retry exhaustion).
	DroppedRounds int
	// BackpressureRounds counts ESM rounds the schedule stalled under
	// PolicyBackpressure (data qubits idling).
	BackpressureRounds int
	// Retransmits counts cross-temperature link retransmissions and
	// BackoffCycles the cycles spent waiting in exponential backoff.
	Retransmits   int
	BackoffCycles uint64
}

// Add folds other into t.
func (t *Totals) Add(other Totals) {
	t.StallCycles += other.StallCycles
	t.StallWindows += other.StallWindows
	t.DroppedRounds += other.DroppedRounds
	t.BackpressureRounds += other.BackpressureRounds
	t.Retransmits += other.Retransmits
	t.BackoffCycles += other.BackoffCycles
}

// seedStream is the offset mixed into the run seed so the injector's
// stream never collides with the backend's noise or tableau streams
// (which use seed, seed+1, seed+2).
const seedStream = 0x7a0e1d

// RoundOutcome is the injector's verdict for one syndrome round.
type RoundOutcome struct {
	// DropEvents marks the round's detection events as lost: the backend
	// must not fold them into the decode window.
	DropEvents bool
	// Retransmits is the number of link retransmissions the round needed
	// and BackoffCycles the exponential-backoff cost they incurred.
	Retransmits   int
	BackoffCycles uint64
}

// WindowOutcome is the injector's verdict for one decode window.
type WindowOutcome struct {
	// StallCycles is the extra decode latency injected this window.
	StallCycles uint64
	// Stalled marks the window as spiked.
	Stalled bool
	// BackpressureRounds is how many rounds the ESM must idle before the
	// next window (PolicyBackpressure overflow).
	BackpressureRounds int
}

// Injector is the per-run fault scheduler. It is not safe for concurrent
// use; every simulation (pipeline run or memory trial) owns its own
// injector, exactly as it owns its own noise models.
type Injector struct {
	cfg Config //xqlint:persistent injector configuration; Reset rewinds streams, not config
	rng *xrand.Rand

	// buf models the syndrome buffer: rounds queued behind the decoder,
	// with overflow resolved under the configured policy. The machinery
	// is shared with decoder.StreamDecoder (which feeds it from decode
	// latency instead of stall draws).
	buf BacklogTracker

	totals Totals
}

// NewInjector derives the injector's dedicated stream from the run seed.
// A nil return means the configuration injects nothing; callers treat a
// nil *Injector as fault-free (its methods are nil-safe).
func NewInjector(cfg Config, seed int64) *Injector {
	if !cfg.Enabled() {
		return nil
	}
	return &Injector{
		cfg: cfg,
		rng: xrand.New(seed + seedStream),
		buf: NewBacklogTracker(cfg.BufferRounds, cfg.Policy),
	}
}

// Reset rewinds the injector to the state NewInjector(cfg, seed) would
// return: totals cleared, backlog drained, and the dedicated stream
// reseeded. Nil-safe, so fault-free runs can call it unconditionally. It
// is the scratch-reuse hook for shot loops that replay many seeds through
// one injector; a reset injector reproduces a fresh one's schedule
// bit-for-bit.
func (in *Injector) Reset(seed int64) {
	if in == nil {
		return
	}
	in.rng.Seed(seed + seedStream)
	in.buf.Reset()
	in.totals = Totals{}
}

// Round draws the link-fault outcome for one syndrome round and consumes
// one scheduled overflow drop, if any. Nil-safe.
func (in *Injector) Round() RoundOutcome {
	if in == nil {
		return RoundOutcome{}
	}
	var out RoundOutcome
	if in.buf.ConsumeDrop() {
		out.DropEvents = true
	}
	if in.cfg.LinkErrorProb > 0 && in.rng.Float64() < in.cfg.LinkErrorProb {
		// Retransmit under exponential backoff: attempt k costs 2^k
		// cycles of waiting before the redraw.
		lost := true
		for k := 0; k < in.cfg.LinkRetries; k++ {
			out.Retransmits++
			out.BackoffCycles += uint64(1) << uint(k)
			if in.rng.Float64() >= in.cfg.LinkErrorProb {
				lost = false
				break
			}
		}
		if lost && !out.DropEvents {
			out.DropEvents = true
			in.totals.DroppedRounds++
		}
	}
	in.totals.Retransmits += out.Retransmits
	in.totals.BackoffCycles += out.BackoffCycles
	return out
}

// Window draws the stall outcome for one decode window of d rounds whose
// fault-free decode costs baseCycles, advances the syndrome-buffer
// backlog model, and resolves any overflow under the configured policy.
// Nil-safe.
func (in *Injector) Window(baseCycles uint64, d int) WindowOutcome {
	if in == nil {
		return WindowOutcome{}
	}
	var out WindowOutcome
	if in.cfg.StallProb > 0 && in.rng.Float64() < in.cfg.StallProb {
		out.Stalled = true
		out.StallCycles = uint64(float64(baseCycles) * (in.cfg.StallFactor - 1))
		if out.StallCycles == 0 {
			out.StallCycles = 1 // a spike always costs something
		}
		// While the decoder is busy for an extra (factor-1) windows'
		// worth of time, the next windows' syndromes queue behind it.
		in.buf.Add(int(in.cfg.StallFactor-1) * d)
		in.totals.StallWindows++
		in.totals.StallCycles += out.StallCycles
	} else {
		// A clean window drains one window's worth of backlog.
		in.buf.Drain(d)
	}
	out.BackpressureRounds = in.buf.Overflow()
	return out
}

// Totals returns the accounting accumulated so far (the injector's own
// stall/link classes plus the buffer tracker's drop/backpressure
// counts). Nil-safe.
func (in *Injector) Totals() Totals {
	if in == nil {
		return Totals{}
	}
	t := in.totals
	t.Add(in.buf.Totals())
	return t
}
