package faults

import (
	"testing"
)

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"zero", Config{}, true},
		{"stall", Config{StallProb: 0.2, StallFactor: 8}, true},
		{"link", Config{LinkErrorProb: 0.01, LinkRetries: 3}, true},
		{"full", Config{StallProb: 0.5, StallFactor: 4, BufferRounds: 10, Policy: PolicyBackpressure, LinkErrorProb: 0.1, LinkRetries: 2}, true},
		{"negative stall prob", Config{StallProb: -0.1, StallFactor: 2}, false},
		{"stall prob above 1", Config{StallProb: 1.5, StallFactor: 2}, false},
		{"factor below 1", Config{StallProb: 0.1, StallFactor: 0.5}, false},
		{"negative buffer", Config{BufferRounds: -1}, false},
		{"negative retries", Config{LinkRetries: -2}, false},
		{"link prob above 1", Config{LinkErrorProb: 2}, false},
		{"bad policy", Config{Policy: Policy(9)}, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.cfg.Validate()
			if c.ok && err != nil {
				t.Fatalf("Validate() = %v, want nil", err)
			}
			if !c.ok && err == nil {
				t.Fatal("Validate() = nil, want error")
			}
		})
	}
}

func TestEnabled(t *testing.T) {
	if (Config{}).Enabled() {
		t.Fatal("zero config reports enabled")
	}
	if (Config{StallProb: 0.5, StallFactor: 1}).Enabled() {
		t.Fatal("factor 1 stall cannot spike; must report disabled")
	}
	if !(Config{StallProb: 0.5, StallFactor: 2}).Enabled() {
		t.Fatal("stall config reports disabled")
	}
	if !(Config{LinkErrorProb: 0.1}).Enabled() {
		t.Fatal("link config reports disabled")
	}
	if NewInjector(Config{}, 1) != nil {
		t.Fatal("disabled config must yield a nil injector")
	}
}

func TestParsePolicy(t *testing.T) {
	for _, p := range []Policy{PolicyDropOldest, PolicyBackpressure} {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Fatalf("ParsePolicy(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParsePolicy("nope"); err == nil {
		t.Fatal("ParsePolicy accepted garbage")
	}
}

func TestNilInjectorIsFaultFree(t *testing.T) {
	var in *Injector
	if out := in.Round(); out != (RoundOutcome{}) {
		t.Fatalf("nil Round() = %+v", out)
	}
	if out := in.Window(100, 5); out != (WindowOutcome{}) {
		t.Fatalf("nil Window() = %+v", out)
	}
	if tot := in.Totals(); tot != (Totals{}) {
		t.Fatalf("nil Totals() = %+v", tot)
	}
}

// drive runs a fixed schedule of windows and rounds through an injector
// and returns the accumulated totals.
func drive(cfg Config, seed int64, windows, d int) Totals {
	in := NewInjector(cfg, seed)
	for w := 0; w < windows; w++ {
		for r := 0; r < d; r++ {
			in.Round()
		}
		in.Window(1000, d)
	}
	return in.Totals()
}

func TestDeterministicSchedule(t *testing.T) {
	cfg := Config{
		StallProb: 0.3, StallFactor: 4,
		BufferRounds: 8, Policy: PolicyDropOldest,
		LinkErrorProb: 0.05, LinkRetries: 3,
	}
	a := drive(cfg, 42, 200, 5)
	b := drive(cfg, 42, 200, 5)
	if a != b {
		t.Fatalf("same seed, different schedules:\n%+v\n%+v", a, b)
	}
	c := drive(cfg, 43, 200, 5)
	if a == c {
		t.Fatal("different seeds produced identical schedules (stream not seed-derived?)")
	}
}

func TestStallAccounting(t *testing.T) {
	cfg := Config{StallProb: 1, StallFactor: 3}
	in := NewInjector(cfg, 7)
	out := in.Window(100, 5)
	if !out.Stalled {
		t.Fatal("probability-1 stall did not fire")
	}
	if out.StallCycles != 200 {
		t.Fatalf("stall cycles = %d, want (factor-1)*base = 200", out.StallCycles)
	}
	tot := in.Totals()
	if tot.StallWindows != 1 || tot.StallCycles != 200 {
		t.Fatalf("totals = %+v", tot)
	}
}

func TestDropOldestOverflowSchedulesRoundDrops(t *testing.T) {
	// Every window stalls by 2 extra windows (factor 3) with a buffer of
	// one window: the backlog must overflow and schedule drops that the
	// following rounds consume.
	cfg := Config{StallProb: 1, StallFactor: 3, BufferRounds: 5, Policy: PolicyDropOldest}
	in := NewInjector(cfg, 11)
	d := 5
	in.Window(100, d) // backlog 10 -> capacity 5, 5 drops scheduled
	dropped := 0
	for r := 0; r < d; r++ {
		if in.Round().DropEvents {
			dropped++
		}
	}
	if dropped != d {
		t.Fatalf("dropped %d rounds, want %d", dropped, d)
	}
	if tot := in.Totals(); tot.DroppedRounds != d {
		t.Fatalf("totals = %+v, want %d dropped rounds", tot, d)
	}
}

func TestBackpressureOverflowStallsESM(t *testing.T) {
	cfg := Config{StallProb: 1, StallFactor: 3, BufferRounds: 5, Policy: PolicyBackpressure}
	in := NewInjector(cfg, 11)
	out := in.Window(100, 5)
	if out.BackpressureRounds != 5 {
		t.Fatalf("backpressure rounds = %d, want 5", out.BackpressureRounds)
	}
	if in.Round().DropEvents {
		t.Fatal("backpressure policy must not drop rounds")
	}
	if tot := in.Totals(); tot.BackpressureRounds != 5 || tot.DroppedRounds != 0 {
		t.Fatalf("totals = %+v", tot)
	}
}

func TestBacklogDrainsOnCleanWindows(t *testing.T) {
	// One stall followed by clean windows: the backlog must drain instead
	// of overflowing a generous buffer.
	cfg := Config{StallProb: 1, StallFactor: 2, BufferRounds: 100, Policy: PolicyDropOldest}
	in := NewInjector(cfg, 3)
	in.Window(100, 5) // backlog 5
	in.cfg.StallProb = 0
	for w := 0; w < 3; w++ {
		in.Window(100, 5)
	}
	if in.buf.Backlog() != 0 {
		t.Fatalf("backlog = %d after clean windows, want 0", in.buf.Backlog())
	}
}

func TestLinkRetransmitBackoffIsExponential(t *testing.T) {
	// Probability-1 corruption with a bounded retry budget: every round
	// exhausts its retries (1+2+4 cycles of backoff) and is lost.
	cfg := Config{LinkErrorProb: 1, LinkRetries: 3}
	in := NewInjector(cfg, 5)
	out := in.Round()
	if out.Retransmits != 3 {
		t.Fatalf("retransmits = %d, want 3", out.Retransmits)
	}
	if out.BackoffCycles != 1+2+4 {
		t.Fatalf("backoff = %d, want 7", out.BackoffCycles)
	}
	if !out.DropEvents {
		t.Fatal("exhausted retries must lose the round")
	}
}

func TestLinkRecoveryWithinBudgetKeepsRound(t *testing.T) {
	// A moderate corruption rate with a deep retry budget: most corrupted
	// rounds must recover (retransmits recorded, round kept).
	cfg := Config{LinkErrorProb: 0.2, LinkRetries: 10}
	in := NewInjector(cfg, 9)
	kept, retrans := 0, 0
	for r := 0; r < 2000; r++ {
		out := in.Round()
		retrans += out.Retransmits
		if out.Retransmits > 0 && !out.DropEvents {
			kept++
		}
	}
	if retrans == 0 {
		t.Fatal("no retransmissions at 20% corruption")
	}
	if kept == 0 {
		t.Fatal("no corrupted round recovered despite a 10-retry budget")
	}
	if tot := in.Totals(); tot.DroppedRounds > retrans/10 {
		t.Fatalf("too many lost rounds for the budget: %+v", tot)
	}
}

func TestTotalsAdd(t *testing.T) {
	a := Totals{StallCycles: 1, StallWindows: 2, DroppedRounds: 3, BackpressureRounds: 4, Retransmits: 5, BackoffCycles: 6}
	b := a
	a.Add(b)
	want := Totals{StallCycles: 2, StallWindows: 4, DroppedRounds: 6, BackpressureRounds: 8, Retransmits: 10, BackoffCycles: 12}
	if a != want {
		t.Fatalf("Add = %+v, want %+v", a, want)
	}
}
