package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// clonedeepAnalyzer enforces the per-worker clone contract from PR 7:
// a method named Clone (no parameters, one result) must hand back an
// object sharing no mutable state with its receiver, so one clone per
// worker is race-free by construction. For every reference-typed field
// (slice, map, pointer, chan, func, interface) the analyzer demands
// deep-copy evidence and flags aliasing flows:
//
//   - a shallow receiver copy (n := *c) whose reference field is never
//     reassigned on the copy,
//   - a direct assignment or composite-literal entry whose right side is
//     the receiver's field (out.buf = c.buf, T{buf: c.buf}),
//   - the receiver's field passed to a non-builtin call, which may
//     retain it (newCell(c.ref) — constructors routinely do),
//   - returning the receiver itself.
//
// Reading a field (len/cap, copy's source, append's elements, a method
// call on the field such as c.bs.Clone()) is not aliasing. Immutable
// tables that clones deliberately share — compiled programs, geometry,
// reference records — are annotated //xqlint:shared <reason> on the
// field declaration.
var clonedeepAnalyzer = &Analyzer{
	Name: "clonedeep",
	Doc:  "Clone methods must deep-copy every reference-typed field, or annotate it //xqlint:shared",
	Run:  runClonedeep,
}

func runClonedeep(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Name != "Clone" || fd.Recv == nil || fd.Body == nil {
				continue
			}
			if fd.Type.Params != nil && len(fd.Type.Params.List) > 0 {
				continue
			}
			if fd.Type.Results == nil || len(fd.Type.Results.List) != 1 {
				continue
			}
			named, recv, ok := recvNamedStruct(p, fd)
			if !ok {
				continue
			}
			checkClone(p, fd, named, recv)
		}
	}
}

func checkClone(p *Pass, fd *ast.FuncDecl, named *types.Named, recv *types.Var) {
	strct := named.Underlying().(*types.Struct)
	refFields := map[string]bool{}
	for i := 0; i < strct.NumFields(); i++ {
		if isReferenceType(strct.Field(i).Type()) {
			refFields[strct.Field(i).Name()] = true
		}
	}
	if len(refFields) == 0 {
		return
	}
	shared := map[string]bool{}
	if st := structDeclOf(p, named); st != nil {
		shared = structFieldAnnotations(p, st, "shared")
	}

	// aliased[f] is the position of the first aliasing flow for field f.
	// copyAliased marks fields aliased via a whole-receiver copy, which a
	// later reassignment on the copy (cleared) repairs; direct aliasing
	// (out.f = c.f, calls retaining c.f) cannot be repaired after the fact.
	aliased := map[string]token.Pos{}
	copyAliased := map[string]token.Pos{}
	cleared := map[string]bool{}
	cloneVars := map[types.Object]bool{}

	aliasAll := func(pos token.Pos) {
		//xqlint:ignore maprange per-key first-write into a position map; no cross-key interaction
		for f := range refFields {
			if _, ok := copyAliased[f]; !ok {
				copyAliased[f] = pos
			}
		}
	}
	markDirect := func(f string, pos token.Pos) {
		if refFields[f] {
			if _, ok := aliased[f]; !ok {
				aliased[f] = pos
			}
		}
	}
	// aliasRHS reports the receiver field an expression aliases, peeling
	// parens and reslices (c.f, (c.f), c.f[1:] all alias f). Indexing is
	// an element read, and calls produce fresh values.
	aliasRHS := func(e ast.Expr) string {
		for {
			switch x := e.(type) {
			case *ast.ParenExpr:
				e = x.X
			case *ast.SliceExpr:
				e = x.X
			case *ast.UnaryExpr:
				if x.Op != token.AND {
					return ""
				}
				e = x.X
			case *ast.SelectorExpr:
				if isRecvExpr(p, recv, x.X) {
					return x.Sel.Name
				}
				return ""
			default:
				return ""
			}
		}
	}
	isRecvCopy := func(e ast.Expr) bool {
		e = ast.Unparen(e)
		if st, ok := e.(*ast.StarExpr); ok {
			e = ast.Unparen(st.X)
		}
		return isRecvExpr(p, recv, e)
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if i >= len(n.Rhs) {
					break
				}
				rhs := n.Rhs[i]
				// v := *c / v := c: shallow copy of the whole receiver.
				if id, ok := lhs.(*ast.Ident); ok && n.Tok == token.DEFINE && isRecvCopy(rhs) {
					if obj := p.Info.Defs[id]; obj != nil {
						cloneVars[obj] = true
					}
					aliasAll(rhs.Pos())
					continue
				}
				if f := aliasRHS(rhs); f != "" {
					markDirect(f, rhs.Pos())
					continue
				}
				// v.f = <fresh> on a shallow copy repairs the copy alias.
				if sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr); ok {
					if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && cloneVars[p.Info.Uses[id]] {
						cleared[sel.Sel.Name] = true
					}
				}
			}
		case *ast.CompositeLit:
			// A receiver field stored into any composite literal — the
			// clone's own struct or a config passed to a constructor —
			// ends up retained by the result.
			for _, elt := range n.Elts {
				val := elt
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					val = kv.Value
				}
				if f := aliasRHS(val); f != "" {
					markDirect(f, val.Pos())
				}
			}
		case *ast.CallExpr:
			if p.Info.Types[n.Fun].IsType() {
				// Conversion: T(c.f) of a reference still aliases.
				for _, arg := range n.Args {
					if f := aliasRHS(arg); f != "" {
						markDirect(f, arg.Pos())
					}
				}
				return true
			}
			builtin := builtinName(p, n)
			switch builtin {
			case "len", "cap", "clear", "delete", "min", "max", "print", "println":
				return true // pure reads (or receiver-local mutation)
			case "copy":
				// copy(dst, c.f) reads the field; only flag a stored dst.
				return true
			case "append":
				// append(c.f[:0:0], ...) allocates fresh backing; any
				// other use of c.f as append's base keeps its array.
				if len(n.Args) > 0 {
					if f := aliasRHS(n.Args[0]); f != "" && !isFullReslice(n.Args[0]) {
						markDirect(f, n.Args[0].Pos())
					}
				}
				return true
			}
			// Method call on the field (c.bs.Clone()) is a read; but the
			// field passed as an argument may be retained by the callee.
			for _, arg := range n.Args {
				if f := aliasRHS(arg); f != "" {
					markDirect(f, arg.Pos())
				}
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if isRecvCopy(res) {
					aliasAll(res.Pos())
					// Returning the receiver itself can never be cleared.
					//xqlint:ignore maprange per-key first-write into a position map; no cross-key interaction
					for f := range refFields {
						if _, ok := aliased[f]; !ok {
							aliased[f] = res.Pos()
						}
					}
				}
			}
		}
		return true
	})

	//xqlint:ignore maprange findings are position-sorted by Run before display
	for f := range refFields {
		if shared[f] {
			continue
		}
		pos, direct := aliased[f]
		if !direct {
			cpos, viaCopy := copyAliased[f]
			if !viaCopy || cleared[f] {
				continue
			}
			pos = cpos
		}
		p.Reportf(pos, "clonedeep",
			"(%s).Clone aliases reference field %s; deep-copy it or annotate the field //xqlint:shared <reason>",
			named.Obj().Name(), f)
	}
}

// isReferenceType reports whether a field of this type, copied by value,
// still shares mutable state with the original.
func isReferenceType(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Slice, *types.Map, *types.Pointer, *types.Chan, *types.Signature, *types.Interface:
		return true
	}
	return false
}

// isFullReslice matches x[:0:0] — the reset-capacity idiom whose append
// always allocates fresh backing.
func isFullReslice(e ast.Expr) bool {
	se, ok := ast.Unparen(e).(*ast.SliceExpr)
	if !ok || !se.Slice3 {
		return false
	}
	isZero := func(x ast.Expr) bool {
		if x == nil {
			return true
		}
		bl, ok := ast.Unparen(x).(*ast.BasicLit)
		return ok && bl.Value == "0"
	}
	return isZero(se.Low) && isZero(se.High) && isZero(se.Max)
}

// builtinName returns the builtin a call invokes, or "".
func builtinName(p *Pass, call *ast.CallExpr) string {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if b, ok := p.Info.Uses[id].(*types.Builtin); ok {
		return b.Name()
	}
	return ""
}
