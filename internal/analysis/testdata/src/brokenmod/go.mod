module brokenmod

go 1.21
