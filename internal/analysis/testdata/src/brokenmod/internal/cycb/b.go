// Package cycb is the other half of the import cycle.
package cycb

import "brokenmod/internal/cyca"

func B() int { return cyca.A() }
