// Package missingdep imports a module-internal package that does not
// exist: the loader must surface the missing dependency.
package missingdep

import "brokenmod/internal/nonexistent"

func M() int { return nonexistent.X }
