// Package cyca is half of an import cycle: the loader must report the
// cycle instead of recursing forever.
package cyca

import "brokenmod/internal/cycb"

func A() int { return cycb.B() }
