// Package typerr type-checks with errors: the loader must still return
// the package, carrying the complaints in TypeErrors.
package typerr

func Bad() int {
	var s string = 42
	return s
}
