// Package p sits in a module whose go.mod has no module directive:
// NewLoader must reject it.
package p
