// Command tool exercises the package scoping: cmd binaries may panic
// (nopanic covers only library packages) but errignore still applies.
package main

import (
	"fmt"
	"os"
)

func main() {
	if len(os.Args) > 2 {
		panic("tool: too many arguments")
	}
	fmt.Fprintln(os.Stderr, "hello")
}
