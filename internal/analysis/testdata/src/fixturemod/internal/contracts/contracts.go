// Package contracts exercises resetcomplete and clonedeep: complete and
// incomplete Reset methods, deep and aliasing Clone methods, the
// persistent/shared annotations, and the reasonless-annotation finding.
package contracts

// GoodShot resets every field, partly by delegating to a helper method
// and partly through a promoted field on the embedded core.
type GoodShot struct {
	core  // embedded: Reset touches its promoted Trace field
	ticks int
	buf   []byte
	prog  []byte //xqlint:persistent compiled program, fixed at construction
}

type core struct {
	Trace []int
}

func (g *GoodShot) Reset() {
	g.ticks = 0
	g.zeroBuf()
	g.Trace = g.Trace[:0] // promoted through core
}

func (g *GoodShot) zeroBuf() {
	for i := range g.buf {
		g.buf[i] = 0
	}
}

// BadShot forgets its skipped field: resetcomplete finding.
type BadShot struct {
	ticks   int
	skipped []byte
}

func (b *BadShot) Reset() { b.ticks = 0 }

// Reasonless carries a bare //xqlint:persistent: the annotation itself
// is an xqlint finding, and the field still counts as unreset.
type Reasonless struct {
	ticks int
	geom  []int //xqlint:persistent
}

func (r *Reasonless) Reset() { r.ticks = 0 }

// GoodClone deep-copies its slice, shares its annotated table, and
// repairs a shallow receiver copy by reassigning the map.
type GoodClone struct {
	buf   []byte
	seen  map[int]bool
	table []int //xqlint:shared immutable lookup table built at construction
}

func (g *GoodClone) Clone() *GoodClone {
	n := *g
	n.buf = append(g.buf[:0:0], g.buf...)
	n.seen = make(map[int]bool, len(g.seen))
	return &n
}

// BadClone aliases its slice straight into the result: clonedeep finding.
type BadClone struct {
	buf []byte
}

func (b *BadClone) Clone() *BadClone {
	return &BadClone{buf: b.buf}
}

// LeakyCopy takes a shallow receiver copy and never repairs the
// reference field: clonedeep finding at the copy.
type LeakyCopy struct {
	refs map[string]int
}

func (l *LeakyCopy) Clone() *LeakyCopy {
	n := *l
	return &n
}

// SharedBare has a reasonless //xqlint:shared: xqlint finding, and the
// field is still held to the deep-copy contract.
type SharedBare struct {
	tab []int //xqlint:shared
}

func (s *SharedBare) Clone() *SharedBare {
	return &SharedBare{tab: s.tab}
}
