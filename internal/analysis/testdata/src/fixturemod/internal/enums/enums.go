// Package enums exercises the exhaustive analyzer: a fully covered
// switch, a switch with a missing member, a default-carrying switch, and
// a counting sentinel that must not be demanded as a case.
package enums

// Opcode is an enum-like type with a sentinel member.
type Opcode int

// The opcodes; numOpcodes counts them.
const (
	OpAdd Opcode = iota
	OpSub
	OpMul
	numOpcodes
)

// Count keeps the sentinel referenced.
func Count() int { return int(numOpcodes) }

// Name covers every opcode: no finding.
func Name(op Opcode) string {
	switch op {
	case OpAdd:
		return "add"
	case OpSub:
		return "sub"
	case OpMul:
		return "mul"
	}
	return "?"
}

// Cost misses OpMul: finding.
func Cost(op Opcode) int {
	switch op {
	case OpAdd:
		return 1
	case OpSub:
		return 2
	}
	return 0
}

// Fallback carries an explicit default: no finding.
func Fallback(op Opcode) int {
	switch op {
	case OpAdd:
		return 1
	default:
		return 9
	}
}
