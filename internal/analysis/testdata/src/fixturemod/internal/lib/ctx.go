// ctx.go exercises ctxfirst: exported signatures with a misplaced
// context, the conventional ctx-first shape, and the escapes.
package lib

import "context"

// FetchLate buries its context mid-signature: finding.
func FetchLate(name string, ctx context.Context) error { return ctx.Err() }

// Fetch takes the context first: no finding.
func Fetch(ctx context.Context, name string) error { return ctx.Err() }

// fetchLate is unexported: no finding.
func fetchLate(name string, ctx context.Context) error { return ctx.Err() }

// FetchLegacy keeps a frozen public signature under an annotation: no
// finding.
//
//xqlint:ignore ctxfirst fixture: frozen signature
func FetchLegacy(name string, ctx context.Context) error {
	return fetchLate(name, ctx)
}
