// Package lib exercises nopanic, floateq, and errignore: reachable
// panics and exits, float equality, discarded errors, and the sanctioned
// escapes for each.
package lib

import (
	"fmt"
	"os"
	"strings"
)

// Explode panics on a reachable path: finding.
func Explode(n int) int {
	if n < 0 {
		panic("lib: negative")
	}
	return n
}

// Guarded documents an unreachable guard: annotated, no finding.
func Guarded(n int) int {
	if n < 0 {
		//xqlint:ignore nopanic fixture: unreachable guard
		panic("lib: negative")
	}
	return n
}

// Bail exits from library code: finding.
func Bail() { os.Exit(1) }

// Close drops the Close error: finding.
func Close(f *os.File) { f.Close() }

// CloseQuiet drops it explicitly: no finding.
func CloseQuiet(f *os.File) { _ = f.Close() }

// Render writes into a strings.Builder, which never fails: no finding.
func Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "x")
	return sb.String()
}

// SameRate compares floats with ==: finding.
func SameRate(a, b float64) bool { return a == b }

// Disabled checks an exact sentinel under an annotation: no finding.
func Disabled(p float64) bool {
	//xqlint:ignore floateq fixture: exact sentinel
	return p == 0
}
