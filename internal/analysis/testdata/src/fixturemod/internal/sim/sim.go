// Package sim exercises the determinism analyzer: a banned import, a
// banned wall-clock call, the sanctioned xrand path, and the annotation
// escape hatch.
package sim

import (
	"math/rand"
	"time"

	"fixturemod/internal/xrand"
)

// Draw uses math/rand directly: the import is a finding.
func Draw() float64 {
	return rand.New(rand.NewSource(1)).Float64()
}

// Stamp reads the wall clock: finding.
func Stamp() int64 { return time.Now().UnixNano() }

// Seeded draws through the sanctioned wrapper: no finding.
func Seeded(seed int64) float64 { return xrand.New(seed).Float64() }

// Allowed reads the wall clock under an annotation: no finding.
func Allowed() int64 {
	//xqlint:ignore determinism fixture: annotated wall-clock read
	return time.Now().Unix()
}
