// Package hotdep is the callee side of the noalloc cross-package test:
// hot's annotated functions may call Annotated (it carries its own
// annotation, so the guarantee composes) but not Plain.
package hotdep

// Annotated is allocation-free and says so.
//
//xqlint:noalloc callee side of the cross-package chain
func Annotated(x uint64) uint64 {
	return x*6364136223846793005 + 1442695040888963407
}

// Plain is also allocation-free but carries no annotation, so a noalloc
// caller in another package cannot rely on it.
func Plain(x uint64) uint64 {
	return x ^ x>>17
}
