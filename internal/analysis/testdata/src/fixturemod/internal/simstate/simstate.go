// Package simstate exercises maprange and globalmut: the bare map range,
// the collect-then-sort idiom (plain and if-filtered), the
// order-insensitive annotation, package-variable writes, and the init
// and sync exemptions.
package simstate

import (
	"sort"
	"sync"
)

// Sum ranges over a map directly: maprange finding.
func Sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// Keys collects then sorts: the sanctioned idiom, no finding.
func Keys(m map[string]int) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// PositiveKeys filters inside the range body before sorting: still the
// collect-then-sort idiom, no finding.
func PositiveKeys(m map[string]int) []string {
	var ks []string
	for k, v := range m {
		if v > 0 {
			ks = append(ks, k)
		}
	}
	sort.Strings(ks)
	return ks
}

// Count is annotated order-insensitive: no finding.
func Count(m map[string]int) int {
	n := 0
	//xqlint:ignore maprange fixture: pure counting, order cannot matter
	for range m {
		n++
	}
	return n
}

// table is written only at declaration and in init: no finding.
var table = map[string]int{"a": 1}

func init() {
	table["b"] = 2
}

// hits is mutated from an ordinary function: globalmut finding.
var hits int

func Record() {
	hits++
}

// mu is sync machinery used at package level: exempt, no finding on the
// Lock/Unlock calls (they are method calls, not assignments anyway).
var mu sync.Mutex

// Guarded writes the package map under an annotation: suppressed.
func Guarded(k string, v int) {
	mu.Lock()
	//xqlint:ignore globalmut fixture: guarded by mu
	table[k] = v
	mu.Unlock()
}
