// Package hot exercises noalloc: allocation sites inside annotated
// functions, transitive same-package callees, and the cross-package
// registry (calls into hotdep).
package hot

import "fixturemod/internal/hotdep"

// Mix is clean: arithmetic, a same-package helper that is itself clean,
// and an annotated cross-package callee. No findings.
//
//xqlint:noalloc hot-path fixture
func Mix(x uint64) uint64 {
	return rot(hotdep.Annotated(x))
}

func rot(x uint64) uint64 { return x<<7 | x>>57 }

// Grow allocates directly (make) and through a same-package helper
// (new): two findings, the second attributed via the transitive walk.
//
//xqlint:noalloc fixture with violations
func Grow(n int) []byte {
	b := make([]byte, n)
	leak()
	return b
}

func leak() *int { return new(int) }

// CallsPlain calls an unannotated function in another module package:
// finding, the registry cannot vouch for it.
//
//xqlint:noalloc cross-package violation fixture
func CallsPlain(x uint64) uint64 {
	return hotdep.Plain(x)
}
