// Package xrand is the fixture module's seeded-randomness wrapper: the
// one simulation package allowed to import math/rand (the determinism
// analyzer's exemption list names it).
package xrand

import "math/rand"

// New returns a seeded generator.
func New(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
