// Package stale exercises the annotation meta-checks: a well-formed
// ignore that suppresses nothing (unusedignore) and an ignore naming an
// analyzer the suite does not have (xqlint).
package stale

// Fine is clean code wearing a stale suppression: unusedignore finding.
func Fine(x int) int {
	//xqlint:ignore floateq fixture: stale, nothing here compares floats
	return x + 1
}

// Typo names a nonexistent analyzer: xqlint finding.
func Typo(x int) int {
	//xqlint:ignore floateqq fixture: misspelled analyzer name
	return x + 2
}
