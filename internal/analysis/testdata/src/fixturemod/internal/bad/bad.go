// Package bad exercises the annotation checker: an ignore comment with
// no reason is itself a finding and suppresses nothing.
package bad

// Reasonless carries a reasonless annotation, so both the annotation and
// the panic it fails to cover are reported.
func Reasonless(n int) int {
	if n < 0 {
		//xqlint:ignore nopanic
		panic("bad: negative")
	}
	return n
}
