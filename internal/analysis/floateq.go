package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// floateqAnalyzer flags == and != between floating-point (or complex)
// operands. Logical error rates and thresholds are accumulated floats;
// exact comparison silently turns into "always unequal" after any
// reordering of the accumulation, which is precisely the class of bug a
// parallel sweep introduces. Compare against a tolerance (see
// internal/verify's approxEqual helpers) or annotate the rare exact
// sentinel check (p == 0 guards) with //xqlint:ignore floateq <reason>.
var floateqAnalyzer = &Analyzer{
	Name: "floateq",
	Doc:  "no == or != on floating-point operands; use a tolerance",
	Run:  runFloateq,
}

func runFloateq(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			tx, ty := p.Info.Types[be.X], p.Info.Types[be.Y]
			// Both sides constant: folded at compile time, no runtime
			// rounding hazard.
			if tx.Value != nil && ty.Value != nil {
				return true
			}
			if isFloat(tx.Type) || isFloat(ty.Type) {
				p.Reportf(be.OpPos, "floateq",
					"%s on floating-point operands; compare with a tolerance or annotate an exact sentinel check", be.Op)
			}
			return true
		})
	}
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}
