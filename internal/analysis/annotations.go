package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// This file implements the contract-annotation grammar shared by the
// struct-contract analyzers (resetcomplete, clonedeep, noalloc):
//
//	//xqlint:persistent <reason>   on a struct field: the field is
//	                               intentionally carried across shots and
//	                               exempt from resetcomplete.
//	//xqlint:shared <reason>       on a struct field: the field is an
//	                               immutable table that Clone may alias,
//	                               exempt from clonedeep.
//	//xqlint:noalloc [note]        on a function declaration: the function
//	                               (and everything it calls inside the
//	                               module) must contain no allocation
//	                               sites; enforced by the noalloc analyzer
//	                               and cross-checked by xqlint -escapes.
//
// persistent and shared are suppressions, so their reason is mandatory —
// a bare annotation is itself a finding, exactly like a reasonless
// //xqlint:ignore.

// fieldAnnotation reports whether a struct field carries the given
// annotation key ("persistent" or "shared") in its doc or trailing
// comment, and whether the annotation carries the mandatory reason.
func fieldAnnotation(field *ast.Field, key string) (found, hasReason bool, pos token.Pos) {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			rest, ok := cutAnnotation(c.Text, key)
			if !ok {
				continue
			}
			return true, strings.TrimSpace(rest) != "", c.Pos()
		}
	}
	return false, false, token.NoPos
}

// funcAnnotation reports whether a function declaration's doc comment
// carries the given annotation key ("noalloc").
func funcAnnotation(fd *ast.FuncDecl, key string) (found bool, pos token.Pos) {
	if fd.Doc == nil {
		return false, token.NoPos
	}
	for _, c := range fd.Doc.List {
		if _, ok := cutAnnotation(c.Text, key); ok {
			return true, c.Pos()
		}
	}
	return false, token.NoPos
}

// cutAnnotation matches a comment of the form "//xqlint:<key>" or
// "//xqlint:<key> <rest>" and returns the rest. A longer annotation name
// sharing the prefix ("noallocX") does not match.
func cutAnnotation(comment, key string) (rest string, ok bool) {
	text := strings.TrimPrefix(comment, "//")
	r, found := strings.CutPrefix(text, "xqlint:"+key)
	if !found {
		return "", false
	}
	if r != "" && r[0] != ' ' && r[0] != '\t' {
		return "", false
	}
	return r, true
}

// structDeclOf locates the AST struct type declaring named inside the
// pass's files, so field annotations can be read. Returns nil when the
// type is declared in another package or is not a struct declaration.
func structDeclOf(p *Pass, named *types.Named) *ast.StructType {
	obj := named.Obj()
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || p.Info.Defs[ts.Name] != obj {
					continue
				}
				if st, ok := ts.Type.(*ast.StructType); ok {
					return st
				}
				return nil
			}
		}
	}
	return nil
}

// structFieldAnnotations maps each field name of the struct AST to its
// annotation state for the given key; malformed (reasonless) annotations
// are reported under the pseudo-analyzer "xqlint".
func structFieldAnnotations(p *Pass, st *ast.StructType, key string) map[string]bool {
	out := map[string]bool{}
	for _, field := range st.Fields.List {
		found, hasReason, pos := fieldAnnotation(field, key)
		if !found {
			continue
		}
		if !hasReason {
			p.Reportf(pos, "xqlint",
				"annotation //xqlint:%s needs a reason: //xqlint:%s <why>", key, key)
			continue
		}
		for _, name := range field.Names {
			out[name.Name] = true
		}
		if len(field.Names) == 0 { // embedded field
			out[embeddedFieldName(field.Type)] = true
		}
	}
	return out
}

// embeddedFieldName resolves an embedded field's implicit name.
func embeddedFieldName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.StarExpr:
		return embeddedFieldName(e.X)
	case *ast.SelectorExpr:
		return e.Sel.Name
	case *ast.IndexExpr:
		return embeddedFieldName(e.X)
	}
	return ""
}

// recvNamedStruct resolves a method's receiver to its named struct type
// (peeling one pointer) and the receiver variable, or ok=false when the
// receiver is unnamed, blank, or not a struct.
func recvNamedStruct(p *Pass, fd *ast.FuncDecl) (*types.Named, *types.Var, bool) {
	if fd.Recv == nil || len(fd.Recv.List) != 1 || len(fd.Recv.List[0].Names) != 1 {
		return nil, nil, false
	}
	name := fd.Recv.List[0].Names[0]
	if name.Name == "_" {
		return nil, nil, false
	}
	obj, ok := p.Info.Defs[name].(*types.Var)
	if !ok {
		return nil, nil, false
	}
	t := obj.Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return nil, nil, false
	}
	if _, ok := named.Underlying().(*types.Struct); !ok {
		return nil, nil, false
	}
	return named, obj, true
}

// isRecvExpr reports whether e denotes the receiver variable itself,
// through any nesting of parens and derefs ((*p), *(p)).
func isRecvExpr(p *Pass, recv *types.Var, e ast.Expr) bool {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.Ident:
			return p.Info.Uses[x] == recv || p.Info.Defs[x] == recv
		default:
			return false
		}
	}
}

// rootField peels an expression down to the receiver field it is rooted
// at — b.errFrame.Ops[i] roots at "errFrame", (*p).trace[:0] at "trace" —
// returning "" when the expression is not rooted at the receiver. A
// selection through an embedded field (l.Patches where Patches is
// promoted from an embedded *Lattice) roots at the embedded field itself,
// so mutating promoted state credits the field that carries it.
func rootField(p *Pass, recv *types.Var, e ast.Expr) string {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.IndexListExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.SelectorExpr:
			if isRecvExpr(p, recv, x.X) {
				if f := promotedVia(p, recv, x); f != "" {
					return f
				}
				return x.Sel.Name
			}
			e = x.X
		default:
			return ""
		}
	}
}

// promotedVia resolves a selection on the receiver that reaches its
// target through an embedded field and returns that embedded field's
// name ("" for a direct field or method, or when the selection is not
// recorded). Index()[0] is the receiver struct's own field on the
// promotion path.
func promotedVia(p *Pass, recv *types.Var, sel *ast.SelectorExpr) string {
	s, ok := p.Info.Selections[sel]
	if !ok || len(s.Index()) < 2 {
		return ""
	}
	t := recv.Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	strct, ok := t.Underlying().(*types.Struct)
	if !ok || s.Index()[0] >= strct.NumFields() {
		return ""
	}
	return strct.Field(s.Index()[0]).Name()
}
