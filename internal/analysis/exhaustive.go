package analysis

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// exhaustiveAnalyzer enforces ISA/enum lockstep: a switch over an
// enum-like named type (integer or string underlying, with at least two
// declared constants) must either list every declared constant or carry
// an explicit default clause. The QISA grows instructions over time (cf.
// eQASM); without this check, adding an opcode compiles cleanly while
// every opcode switch in internal/microarch silently falls through.
// Counting sentinels such as numOpcodes are excluded, as are constants
// that are unexported from the switch's vantage point.
var exhaustiveAnalyzer = &Analyzer{
	Name: "exhaustive",
	Doc:  "switches over enum-like types cover every declared constant or carry an explicit default",
	Run:  runExhaustive,
}

func runExhaustive(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			tagType := p.Info.TypeOf(sw.Tag)
			if tagType == nil {
				return true
			}
			named, ok := types.Unalias(tagType).(*types.Named)
			if !ok {
				return true
			}
			basic, ok := named.Underlying().(*types.Basic)
			if !ok {
				return true
			}
			info := basic.Info()
			if info&(types.IsInteger|types.IsString) == 0 || info&types.IsBoolean != 0 {
				return true
			}
			members := enumMembers(p, named)
			if len(members) < p.Cfg.ExhaustiveMinMembers {
				return true
			}

			covered := map[string]bool{}
			for _, stmt := range sw.Body.List {
				cc, ok := stmt.(*ast.CaseClause)
				if !ok {
					continue
				}
				if cc.List == nil {
					return true // explicit default: exhaustiveness satisfied
				}
				for _, e := range cc.List {
					if tv, ok := p.Info.Types[e]; ok && tv.Value != nil {
						covered[tv.Value.ExactString()] = true
					}
				}
			}

			var missing []string
			for _, m := range members {
				if !covered[m.val] {
					missing = append(missing, m.name)
				}
			}
			if len(missing) > 0 {
				typeName := types.TypeString(named, types.RelativeTo(p.Pkg))
				p.Reportf(sw.Pos(), "exhaustive",
					"switch over %s misses %s; add the cases or a default that rejects the value",
					typeName, strings.Join(missing, ", "))
			}
			return true
		})
	}
}

type enumMember struct {
	name string
	val  string // constant.Value.ExactString
}

// enumMembers lists the declared constants of the named type, from the
// type's defining package. Constants invisible from the switch's package
// and counting sentinels are excluded; members sharing a value are
// collapsed onto the first declared name.
func enumMembers(p *Pass, named *types.Named) []enumMember {
	defPkg := named.Obj().Pkg()
	if defPkg == nil {
		return nil // universe type (error, ...)
	}
	sameP := defPkg == p.Pkg
	scope := defPkg.Scope()
	byVal := map[string]bool{}
	var out []enumMember
	names := scope.Names() // sorted
	for _, name := range names {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(types.Unalias(c.Type()), named) {
			continue
		}
		if !sameP && !c.Exported() {
			continue
		}
		if p.Cfg.isSentinelConst(name) {
			continue
		}
		v := c.Val().ExactString()
		if byVal[v] {
			continue
		}
		byVal[v] = true
		out = append(out, enumMember{name: name, val: v})
	}
	sort.Slice(out, func(i, j int) bool {
		vi, vj := constantOrder(out[i].val), constantOrder(out[j].val)
		if vi != vj {
			return vi < vj
		}
		return out[i].name < out[j].name
	})
	return out
}

// constantOrder gives non-negative integer constants a zero-padded sort
// key so missing-case lists read in value order; other values sort
// textually.
func constantOrder(exact string) string {
	for _, r := range exact {
		if r < '0' || r > '9' {
			return exact
		}
	}
	return strings.Repeat("0", max(0, 20-len(exact))) + exact
}
