package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// noallocAnalyzer is the compile-time half of the zero-steady-state-
// allocation guarantees the AllocsPerRun tests gate at runtime: a
// function annotated //xqlint:noalloc must contain no AST-level
// allocation site, and neither may anything it calls inside the module.
// Flagged sites: make/new, append (growth cannot be ruled out
// statically; amortized appends carry an //xqlint:ignore noalloc with
// the reason), slice/map composite literals and &T{} literals, closures
// (func literals capture), string concatenation and string<->slice
// conversions, interface boxing of non-pointer values at call sites,
// any fmt.* call, go statements, and calls that cannot be verified
// (func values, interface-dispatched methods). Same-package callees are
// checked transitively; a call into another module package is only
// accepted when the callee carries its own //xqlint:noalloc annotation,
// so the guarantee composes across packages. xqlint -escapes
// cross-checks the annotations against the compiler's real escape
// analysis (go build -gcflags=-m), so the static gate and the runtime
// AllocsPerRun tests corroborate each other.
var noallocAnalyzer = &Analyzer{
	Name: "noalloc",
	Doc:  "functions annotated //xqlint:noalloc (and their module callees) must contain no allocation sites",
	Run:  runNoalloc,
}

func runNoalloc(p *Pass) {
	// Map every function declared in this package to its AST, and find
	// the annotated roots.
	decls := map[types.Object]*ast.FuncDecl{}
	var roots []*ast.FuncDecl
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj := p.Info.Defs[fd.Name]; obj != nil {
				decls[obj] = fd
			}
			if found, _ := funcAnnotation(fd, "noalloc"); found {
				roots = append(roots, fd)
			}
		}
	}
	if len(roots) == 0 {
		return
	}

	checked := map[*ast.FuncDecl]bool{}
	var check func(fd *ast.FuncDecl, origin string)
	check = func(fd *ast.FuncDecl, origin string) {
		if checked[fd] {
			return
		}
		checked[fd] = true
		via := ""
		if origin != "" && origin != fd.Name.Name {
			via = " (reached from //xqlint:noalloc " + origin + ")"
		}
		report := func(pos token.Pos, format string, args ...any) {
			p.Reportf(pos, "noalloc", "%s in noalloc function %s%s",
				fmt.Sprintf(format, args...), fd.Name.Name, via)
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				report(n.Pos(), "closure literal (captures allocate)")
				return false // the closure's own body is the closure's problem
			case *ast.GoStmt:
				report(n.Pos(), "go statement (goroutine stacks allocate)")
			case *ast.UnaryExpr:
				if n.Op == token.AND {
					if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
						report(n.Pos(), "&composite literal")
					}
				}
			case *ast.CompositeLit:
				switch p.Info.TypeOf(n).Underlying().(type) {
				case *types.Slice, *types.Map:
					report(n.Pos(), "%s literal allocates backing storage",
						typeKindWord(p.Info.TypeOf(n)))
				}
			case *ast.BinaryExpr:
				if n.Op == token.ADD && p.Info.Types[ast.Expr(n)].Value == nil &&
					isStringType(p.Info.TypeOf(n)) {
					report(n.OpPos, "string concatenation")
				}
			case *ast.CallExpr:
				checkNoallocCall(p, n, fd, origin, decls, report, check)
			}
			return true
		})
	}
	for _, fd := range roots {
		check(fd, fd.Name.Name)
	}
}

// checkNoallocCall classifies one call inside a noalloc closure walk.
func checkNoallocCall(p *Pass, call *ast.CallExpr, fd *ast.FuncDecl, origin string,
	decls map[types.Object]*ast.FuncDecl,
	report func(pos token.Pos, format string, args ...any),
	check func(fd *ast.FuncDecl, origin string)) {

	// Conversions: string<->[]byte/[]rune copy their payload.
	if tv, ok := p.Info.Types[call.Fun]; ok && tv.IsType() {
		dst := p.Info.TypeOf(call.Fun)
		if len(call.Args) == 1 {
			src := p.Info.TypeOf(call.Args[0])
			if stringSliceConversion(dst, src) {
				report(call.Pos(), "conversion between string and slice copies")
			}
		}
		return
	}
	switch builtinName(p, call) {
	case "make":
		report(call.Pos(), "make")
		return
	case "new":
		report(call.Pos(), "new")
		return
	case "append":
		report(call.Pos(), "append may grow its backing array")
		return
	case "":
		// not a builtin: fall through
	default:
		return // len/cap/copy/clear/delete/min/max/...: allocation-free
	}

	var callee *types.Func
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		callee, _ = p.Info.Uses[fun].(*types.Func)
		if callee == nil {
			if _, isVar := p.Info.Uses[fun].(*types.Var); isVar {
				report(call.Pos(), "call through func value %s cannot be verified", fun.Name)
				return
			}
		}
	case *ast.SelectorExpr:
		callee, _ = p.Info.Uses[fun.Sel].(*types.Func)
	}
	if callee == nil {
		report(call.Pos(), "indirect call cannot be verified")
		return
	}
	if sig, ok := callee.Type().(*types.Signature); ok {
		if recv := sig.Recv(); recv != nil {
			if _, ok := recv.Type().Underlying().(*types.Interface); ok {
				report(call.Pos(), "dynamic call %s through an interface cannot be verified", callee.Name())
				return
			}
		}
		checkBoxedArgs(p, call, sig, report)
	}
	pkg := callee.Pkg()
	if pkg == nil {
		return
	}
	full := callee.FullName()
	if strings.HasPrefix(full, "fmt.") {
		report(call.Pos(), "%s allocates (formatting, interface boxing)", full)
		return
	}
	switch {
	case pkg == p.Pkg:
		if calleeDecl, ok := decls[callee]; ok {
			check(calleeDecl, origin)
		}
	case strings.HasPrefix(pkg.Path(), p.Cfg.ModulePath+"/") || pkg.Path() == p.Cfg.ModulePath:
		if !p.noallocRegistry[full] {
			report(call.Pos(), "calls %s, which is not annotated //xqlint:noalloc", full)
		}
	}
}

// checkBoxedArgs flags non-pointer-shaped concrete values passed where
// an interface is expected: the conversion boxes and may allocate.
func checkBoxedArgs(p *Pass, call *ast.CallExpr, sig *types.Signature, report func(pos token.Pos, format string, args ...any)) {
	params := sig.Params()
	if params == nil {
		return
	}
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case i < params.Len()-1 || (!sig.Variadic() && i < params.Len()):
			pt = params.At(i).Type()
		case sig.Variadic():
			if call.Ellipsis != token.NoPos {
				continue
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		default:
			continue
		}
		if _, ok := pt.Underlying().(*types.Interface); !ok {
			continue
		}
		at := p.Info.TypeOf(arg)
		if at == nil || isPointerShaped(at) {
			continue
		}
		if _, ok := at.Underlying().(*types.Interface); ok {
			continue
		}
		if tv, ok := p.Info.Types[arg]; ok && tv.IsNil() {
			continue
		}
		report(arg.Pos(), "interface boxing of %s value", at.String())
	}
}

// isPointerShaped reports types whose interface conversion stores the
// value directly in the iface word without allocating.
func isPointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	}
	return false
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func stringSliceConversion(dst, src types.Type) bool {
	_, dstSlice := dst.Underlying().(*types.Slice)
	_, srcSlice := src.Underlying().(*types.Slice)
	return (isStringType(dst) && srcSlice) || (dstSlice && isStringType(src))
}

func typeKindWord(t types.Type) string {
	switch t.Underlying().(type) {
	case *types.Map:
		return "map"
	default:
		return "slice"
	}
}
