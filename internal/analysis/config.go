package analysis

import "strings"

// Config is the analyzer suite's small allowlist configuration. Paths in
// the prefix/exempt lists are module-relative ("internal/stab"); an entry
// matches a package when it equals the package's relative path or is a
// prefix of it at a path boundary.
type Config struct {
	// ModulePath is the module's import-path prefix ("xqsim").
	ModulePath string

	// SimPackages lists the package trees held to the determinism
	// invariant: a seed must fully determine a run.
	SimPackages []string
	// DeterminismExempt lists packages excused from the determinism
	// analyzer. internal/xrand is the sanctioned randomness wrapper;
	// internal/server and internal/store are the xqd daemon's service
	// layer, which legitimately reads wall clocks (watchdogs, retry
	// backoff, Retry-After). The simulation they schedule stays under
	// the invariant — jobs are pure functions of (config, seed, shots).
	DeterminismExempt []string
	// DeterminismBannedImports are import paths simulation packages may
	// not depend on directly.
	DeterminismBannedImports []string
	// DeterminismBannedCalls are fully-qualified functions (in
	// types.Func.FullName form) that read nondeterministic state.
	DeterminismBannedCalls []string

	// LibraryPackages lists the package trees held to the nopanic
	// invariant. cmd/* and examples/* are deliberately absent: a CLI's
	// main is the right place for os.Exit.
	LibraryPackages []string

	// ErrignoreAllow lists callee name prefixes (types.Func.FullName
	// form) whose error results may be dropped: writers that are
	// documented to never fail, and terminal-print helpers whose error
	// has no actionable handler.
	ErrignoreAllow []string

	// ExhaustiveSentinelPrefixes marks constants that are counting
	// sentinels rather than enum members ("numOpcodes").
	ExhaustiveSentinelPrefixes []string
	// ExhaustiveMinMembers is the smallest constant set treated as an
	// enum; types with fewer declared constants are ignored.
	ExhaustiveMinMembers int
}

// DefaultConfig returns the repo's enforced configuration for the module
// rooted at modulePath.
func DefaultConfig(modulePath string) *Config {
	return &Config{
		ModulePath:        modulePath,
		SimPackages:       []string{"internal"},
		DeterminismExempt: []string{"internal/xrand", "internal/server", "internal/store"},
		DeterminismBannedImports: []string{
			"math/rand",
			"math/rand/v2",
			"crypto/rand",
		},
		DeterminismBannedCalls: []string{
			"time.Now",
			"time.Since",
			"time.Until",
			"time.Tick",
			"time.After",
			"time.AfterFunc",
			"time.NewTimer",
			"time.NewTicker",
		},
		LibraryPackages: []string{"internal"},
		ErrignoreAllow: []string{
			// Documented to never return a non-nil error.
			"(*strings.Builder).",
			"(*bytes.Buffer).",
			// Terminal prints in CLI tools: no actionable handler.
			"fmt.Print",
			"fmt.Printf",
			"fmt.Println",
		},
		// numOpcodes, NumKinds, NumUnits, NumESMSteps: counting
		// sentinels, not members.
		ExhaustiveSentinelPrefixes: []string{"num", "Num"},
		ExhaustiveMinMembers:       2,
	}
}

// relPath strips the module prefix from an import path; the module root
// package maps to "".
func (c *Config) relPath(importPath string) string {
	if importPath == c.ModulePath {
		return ""
	}
	return strings.TrimPrefix(importPath, c.ModulePath+"/")
}

// pathMatches reports whether rel equals entry or sits below it.
func pathMatches(rel, entry string) bool {
	return rel == entry || strings.HasPrefix(rel, entry+"/")
}

func matchesAny(rel string, entries []string) bool {
	for _, e := range entries {
		if pathMatches(rel, e) {
			return true
		}
	}
	return false
}

// isSimPackage reports whether the package is held to the determinism
// invariant.
func (c *Config) isSimPackage(rel string) bool {
	return matchesAny(rel, c.SimPackages) && !matchesAny(rel, c.DeterminismExempt)
}

// isLibraryPackage reports whether the package is held to the nopanic
// invariant.
func (c *Config) isLibraryPackage(rel string) bool {
	return matchesAny(rel, c.LibraryPackages)
}

// errignoreAllowed reports whether the named callee's error result may be
// discarded.
func (c *Config) errignoreAllowed(fullName string) bool {
	for _, p := range c.ErrignoreAllow {
		if strings.HasPrefix(fullName, p) {
			return true
		}
	}
	return false
}

// isSentinelConst reports whether a constant name is a counting sentinel
// excluded from exhaustiveness.
func (c *Config) isSentinelConst(name string) bool {
	for _, p := range c.ExhaustiveSentinelPrefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}
