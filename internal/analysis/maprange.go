package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// maprangeAnalyzer closes the map-iteration hole the determinism
// analyzer (imports and wall-clock only) does not cover: Go randomizes
// map iteration order on purpose, so a `range` over a map in a
// simulation package makes output depend on the run, not the seed —
// exactly the nondeterminism the (config, seed) reproduction contract
// forbids. The one sanctioned direct use is the collect-then-sort idiom:
// a range body that only appends keys/values to slices which are then
// passed to sort.* or slices.Sort* later in the same function is
// order-insensitive by construction and allowed. Anything else is a
// finding; genuinely order-insensitive bodies (pure counting, max over
// a commutative monoid) are annotated
// //xqlint:ignore maprange <why order cannot matter>.
var maprangeAnalyzer = &Analyzer{
	Name: "maprange",
	Doc:  "no range over a map in simulation packages unless keys are collected and sorted, or annotated order-insensitive",
	Run:  runMaprange,
}

func runMaprange(p *Pass) {
	if !p.Cfg.isSimPackage(p.RelPath) {
		return
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				t := p.Info.TypeOf(rs.X)
				if t == nil {
					return true
				}
				if _, ok := t.Underlying().(*types.Map); !ok {
					return true
				}
				if isCollectThenSort(p, fd, rs) {
					return true
				}
				p.Reportf(rs.Pos(), "maprange",
					"range over a map in a simulation package iterates in randomized order; collect and sort the keys, or annotate //xqlint:ignore maprange <why order cannot matter>")
				return true
			})
		}
	}
}

// isCollectThenSort recognizes the sanctioned idiom: every statement in
// the range body appends to slice variables (possibly behind a filter
// `if` — collect-if-then-sort is as common as the bare form), and at
// least one of those slices is later passed to a sort call in the same
// function.
func isCollectThenSort(p *Pass, fd *ast.FuncDecl, rs *ast.RangeStmt) bool {
	var collected []types.Object
	var collectOnly func(stmt ast.Stmt) bool
	collectOnly = func(stmt ast.Stmt) bool {
		switch s := stmt.(type) {
		case *ast.AssignStmt:
			if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
				return false
			}
			call, ok := s.Rhs[0].(*ast.CallExpr)
			if !ok || builtinName(p, call) != "append" {
				return false
			}
			id, ok := ast.Unparen(s.Lhs[0]).(*ast.Ident)
			if !ok {
				return false
			}
			obj := p.Info.Uses[id]
			if obj == nil {
				obj = p.Info.Defs[id]
			}
			if obj == nil {
				return false
			}
			collected = append(collected, obj)
			return true
		case *ast.BlockStmt:
			for _, st := range s.List {
				if !collectOnly(st) {
					return false
				}
			}
			return true
		case *ast.IfStmt:
			// The condition is a pure filter; an Init statement could
			// smuggle in arbitrary effects, so it disqualifies.
			if s.Init != nil {
				return false
			}
			if !collectOnly(s.Body) {
				return false
			}
			return s.Else == nil || collectOnly(s.Else)
		default:
			return false
		}
	}
	for _, stmt := range rs.Body.List {
		if !collectOnly(stmt) {
			return false
		}
	}
	if len(collected) == 0 {
		return false
	}
	sorted := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if sorted {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		name := funcFullName(p.Info, call)
		if !strings.HasPrefix(name, "sort.") && !strings.HasPrefix(name, "slices.Sort") {
			return true
		}
		for _, arg := range call.Args {
			id, ok := ast.Unparen(arg).(*ast.Ident)
			if !ok {
				continue
			}
			for _, obj := range collected {
				if p.Info.Uses[id] == obj {
					sorted = true
					return false
				}
			}
		}
		return true
	})
	return sorted
}
