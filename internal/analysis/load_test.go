package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeFile(t *testing.T, path, content string) error {
	t.Helper()
	return os.WriteFile(path, []byte(content), 0o644)
}

// brokenLoader roots a loader at the deliberately-broken fixture module.
func brokenLoader(t *testing.T) (*Loader, string) {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("testdata", "src", "brokenmod"))
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	if loader.ModulePath != "brokenmod" {
		t.Fatalf("module path = %q, want brokenmod", loader.ModulePath)
	}
	return loader, dir
}

func TestLoadImportCycle(t *testing.T) {
	loader, _ := brokenLoader(t)
	// The cycle error surfaces through the type-checker's error handler:
	// loading cyca re-enters Load(cycb), whose import of cyca hits the
	// in-flight guard, and the loader error is recorded as a type error
	// on the inner package (cycb) rather than aborting the outer load.
	// What must not happen is an infinite recursion or a silent success
	// on both packages.
	for _, path := range []string{"brokenmod/internal/cyca", "brokenmod/internal/cycb"} {
		lp, err := loader.Load(path)
		if err != nil {
			if !strings.Contains(err.Error(), "import cycle") {
				t.Fatalf("Load(%s) error = %v, want import cycle", path, err)
			}
			return
		}
		for _, te := range lp.TypeErrors {
			if strings.Contains(te.Error(), "import cycle") {
				return
			}
		}
	}
	t.Fatal("neither cyca nor cycb reported the import cycle")
}

func TestLoadMissingPackage(t *testing.T) {
	loader, _ := brokenLoader(t)
	if _, err := loader.Load("brokenmod/internal/nonexistent"); err == nil {
		t.Fatal("Load(nonexistent) succeeded, want error")
	}
	if _, err := loader.Load("brokenmod/internal/nogo"); err == nil ||
		!strings.Contains(err.Error(), "no Go files") {
		t.Fatalf("Load(nogo) error = %v, want no Go files", err)
	}
}

func TestLoadMissingDependency(t *testing.T) {
	loader, _ := brokenLoader(t)
	lp, err := loader.Load("brokenmod/internal/missingdep")
	if err == nil && (lp == nil || len(lp.TypeErrors) == 0) {
		t.Fatal("Load(missingdep) reported neither an error nor TypeErrors for a nonexistent import")
	}
}

func TestLoadTypeErrors(t *testing.T) {
	loader, _ := brokenLoader(t)
	lp, err := loader.Load("brokenmod/internal/typerr")
	if err != nil {
		t.Fatalf("Load(typerr) = %v; ill-typed packages must still load", err)
	}
	if len(lp.TypeErrors) == 0 {
		t.Fatal("Load(typerr) reported no TypeErrors")
	}
	if lp.Pkg == nil {
		t.Fatal("Load(typerr) returned nil Pkg")
	}
}

// TestLoadParseError synthesizes its broken module at runtime: an
// unparseable .go file cannot live under testdata, where gofmt -l (the
// CI formatting gate) would choke on it.
func TestLoadParseError(t *testing.T) {
	dir := t.TempDir()
	if err := writeFile(t, filepath.Join(dir, "go.mod"), "module parsemod\n\ngo 1.21\n"); err != nil {
		t.Fatal(err)
	}
	if err := os.Mkdir(filepath.Join(dir, "bad"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := writeFile(t, filepath.Join(dir, "bad", "bad.go"), "package bad\n\nfunc Broken( {\n"); err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := loader.Load("parsemod/bad"); err == nil {
		t.Fatal("Load(parsemod/bad) succeeded, want syntax error")
	}
}

func TestLoadMemoized(t *testing.T) {
	loader, _ := brokenLoader(t)
	a, err := loader.Load("brokenmod/internal/typerr")
	if err != nil {
		t.Fatal(err)
	}
	b, err := loader.Load("brokenmod/internal/typerr")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("Load is not memoized: two calls returned distinct packages")
	}
}

func TestNewLoaderNoGoMod(t *testing.T) {
	if _, err := NewLoader(t.TempDir()); err == nil {
		t.Fatal("NewLoader on a bare temp dir succeeded, want no-go.mod error")
	}
}

func TestNewLoaderNoModuleDirective(t *testing.T) {
	dir := filepath.Join("testdata", "src", "nodirective")
	if _, err := NewLoader(dir); err == nil ||
		!strings.Contains(err.Error(), "module directive") {
		t.Fatalf("NewLoader(nodirective) error = %v, want missing module directive", err)
	}
}

func TestExpandPatterns(t *testing.T) {
	loader, dir := brokenLoader(t)

	// A tree walk finds every package directory with Go files, skips the
	// one without, and never descends into testdata/hidden dirs (none
	// here, but the walk must terminate).
	paths, err := loader.Expand([]string{dir + "/..."})
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, p := range paths {
		got[p] = true
	}
	for _, want := range []string{
		"brokenmod/internal/cyca",
		"brokenmod/internal/cycb",
		"brokenmod/internal/typerr",
		"brokenmod/internal/missingdep",
	} {
		if !got[want] {
			t.Errorf("Expand(%s/...) missing %s (got %v)", dir, want, paths)
		}
	}
	if got["brokenmod/internal/nogo"] {
		t.Error("Expand included the Go-less directory nogo")
	}

	// Import-path patterns resolve without touching the filesystem shape,
	// and duplicates collapse.
	paths, err = loader.Expand([]string{
		"brokenmod/internal/typerr",
		"brokenmod/internal/typerr",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 || paths[0] != "brokenmod/internal/typerr" {
		t.Errorf("Expand(dup import path) = %v, want one typerr entry", paths)
	}

	// A directory pattern for a package without Go files is an error.
	if _, err := loader.Expand([]string{filepath.Join(dir, "internal", "nogo")}); err == nil {
		t.Error("Expand(nogo dir) succeeded, want no-Go-files error")
	}

	// A directory outside the module (but holding Go files, so it gets
	// past the no-Go-files check) is rejected by importPathOf.
	outside := t.TempDir()
	if err := writeFile(t, filepath.Join(outside, "x.go"), "package x\n"); err != nil {
		t.Fatal(err)
	}
	if _, err := loader.Expand([]string{outside}); err == nil ||
		!strings.Contains(err.Error(), "outside module") {
		t.Errorf("Expand(outside dir) error = %v, want outside-module error", err)
	}
}
