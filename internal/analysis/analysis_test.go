package analysis

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// loadFixture type-checks the pseudo-module under testdata/src/fixturemod
// and returns its packages plus the module root directory.
func loadFixture(t *testing.T) ([]*LoadedPackage, string) {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("testdata", "src", "fixturemod"))
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	if loader.ModulePath != "fixturemod" {
		t.Fatalf("module path = %q, want fixturemod", loader.ModulePath)
	}
	paths, err := loader.Expand([]string{dir + "/..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no fixture packages found")
	}
	var pkgs []*LoadedPackage
	for _, path := range paths {
		lp, err := loader.Load(path)
		if err != nil {
			t.Fatalf("load %s: %v", path, err)
		}
		for _, te := range lp.TypeErrors {
			t.Errorf("fixture type error in %s: %v", path, te)
		}
		pkgs = append(pkgs, lp)
	}
	return pkgs, dir
}

// TestFixtureGolden runs the full suite over the fixture module and
// compares the findings against testdata/fixturemod.golden. Regenerate
// with: go test ./internal/analysis -run Golden -update
func TestFixtureGolden(t *testing.T) {
	pkgs, root := loadFixture(t)
	findings := Run(pkgs, DefaultConfig("fixturemod"), All())
	if len(findings) == 0 {
		t.Fatal("fixture module produced no findings")
	}

	var sb strings.Builder
	for _, f := range findings {
		rel, err := filepath.Rel(root, f.Pos.Filename)
		if err != nil {
			t.Fatal(err)
		}
		f.Pos.Filename = filepath.ToSlash(rel)
		sb.WriteString(f.String())
		sb.WriteString("\n")
	}
	got := sb.String()

	goldenPath := filepath.Join("testdata", "fixturemod.golden")
	if *update {
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if got != string(want) {
		t.Errorf("findings mismatch (-want +got):\n--- want\n%s--- got\n%s", want, got)
	}
}

// TestFixtureNegatives spot-checks that the escape hatches suppress:
// no finding may land on a line annotated with a valid ignore, on the
// xrand wrapper's banned import, or on the cmd package's panic.
func TestFixtureNegatives(t *testing.T) {
	pkgs, _ := loadFixture(t)
	findings := Run(pkgs, DefaultConfig("fixturemod"), All())
	for _, f := range findings {
		base := filepath.Base(f.Pos.Filename)
		if base == "xrand.go" {
			t.Errorf("finding in exempt package: %v", f)
		}
		if base == "main.go" && f.Analyzer == "nopanic" {
			t.Errorf("nopanic finding in cmd package: %v", f)
		}
	}
	// The annotated sites in sim.go and lib.go must not be reported:
	// their findings would carry these analyzers at these files.
	suppressed := map[string]int{"sim.go": 0, "lib.go": 0}
	for _, f := range findings {
		suppressed[filepath.Base(f.Pos.Filename)]++
	}
	// sim.go: exactly the banned import and the one unannotated time.Now.
	if n := suppressed["sim.go"]; n != 2 {
		t.Errorf("sim.go findings = %d, want 2 (annotated call must be suppressed)", n)
	}
	// lib.go: panic, os.Exit, dropped Close, float ==; the annotated
	// panic and sentinel check plus the Builder write stay silent.
	if n := suppressed["lib.go"]; n != 4 {
		t.Errorf("lib.go findings = %d, want 4 (escape hatches must suppress)", n)
	}
}

// TestAnalyzerListStable pins the suite's composition: CI wiring and the
// docs name these six analyzers.
func TestAnalyzerListStable(t *testing.T) {
	want := []string{"determinism", "exhaustive", "nopanic", "floateq", "errignore", "ctxfirst"}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("All() returned %d analyzers, want %d", len(all), len(want))
	}
	for i, a := range all {
		if a.Name != want[i] {
			t.Errorf("analyzer[%d] = %s, want %s", i, a.Name, want[i])
		}
		if a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %s missing doc or run function", a.Name)
		}
	}
}
