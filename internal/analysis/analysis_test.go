package analysis

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// loadFixture type-checks the pseudo-module under testdata/src/fixturemod
// and returns its packages plus the module root directory.
func loadFixture(t *testing.T) ([]*LoadedPackage, string) {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("testdata", "src", "fixturemod"))
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	if loader.ModulePath != "fixturemod" {
		t.Fatalf("module path = %q, want fixturemod", loader.ModulePath)
	}
	paths, err := loader.Expand([]string{dir + "/..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no fixture packages found")
	}
	var pkgs []*LoadedPackage
	for _, path := range paths {
		lp, err := loader.Load(path)
		if err != nil {
			t.Fatalf("load %s: %v", path, err)
		}
		for _, te := range lp.TypeErrors {
			t.Errorf("fixture type error in %s: %v", path, te)
		}
		pkgs = append(pkgs, lp)
	}
	return pkgs, dir
}

// TestFixtureGolden runs the full suite over the fixture module and
// compares the findings against testdata/fixturemod.golden. Regenerate
// with: go test ./internal/analysis -run Golden -update
func TestFixtureGolden(t *testing.T) {
	pkgs, root := loadFixture(t)
	findings := Run(pkgs, DefaultConfig("fixturemod"), All())
	if len(findings) == 0 {
		t.Fatal("fixture module produced no findings")
	}

	var sb strings.Builder
	for _, f := range findings {
		rel, err := filepath.Rel(root, f.Pos.Filename)
		if err != nil {
			t.Fatal(err)
		}
		f.Pos.Filename = filepath.ToSlash(rel)
		sb.WriteString(f.String())
		sb.WriteString("\n")
	}
	got := sb.String()

	goldenPath := filepath.Join("testdata", "fixturemod.golden")
	if *update {
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if got != string(want) {
		t.Errorf("findings mismatch (-want +got):\n--- want\n%s--- got\n%s", want, got)
	}
}

// TestFixtureNegatives spot-checks that the escape hatches suppress:
// no finding may land on a line annotated with a valid ignore, on the
// xrand wrapper's banned import, or on the cmd package's panic.
func TestFixtureNegatives(t *testing.T) {
	pkgs, _ := loadFixture(t)
	findings := Run(pkgs, DefaultConfig("fixturemod"), All())
	for _, f := range findings {
		base := filepath.Base(f.Pos.Filename)
		if base == "xrand.go" {
			t.Errorf("finding in exempt package: %v", f)
		}
		if base == "main.go" && f.Analyzer == "nopanic" {
			t.Errorf("nopanic finding in cmd package: %v", f)
		}
	}
	// The annotated sites in sim.go and lib.go must not be reported:
	// their findings would carry these analyzers at these files.
	suppressed := map[string]int{"sim.go": 0, "lib.go": 0}
	for _, f := range findings {
		suppressed[filepath.Base(f.Pos.Filename)]++
	}
	// sim.go: exactly the banned import and the one unannotated time.Now.
	if n := suppressed["sim.go"]; n != 2 {
		t.Errorf("sim.go findings = %d, want 2 (annotated call must be suppressed)", n)
	}
	// lib.go: panic, os.Exit, dropped Close, float ==; the annotated
	// panic and sentinel check plus the Builder write stay silent.
	if n := suppressed["lib.go"]; n != 4 {
		t.Errorf("lib.go findings = %d, want 4 (escape hatches must suppress)", n)
	}
}

// TestAnalyzerListStable pins the suite's composition: CI wiring and the
// docs name these eleven analyzers.
func TestAnalyzerListStable(t *testing.T) {
	want := []string{
		"determinism", "exhaustive", "nopanic", "floateq", "errignore", "ctxfirst",
		"resetcomplete", "clonedeep", "maprange", "noalloc", "globalmut",
	}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("All() returned %d analyzers, want %d", len(all), len(want))
	}
	for i, a := range all {
		if a.Name != want[i] {
			t.Errorf("analyzer[%d] = %s, want %s", i, a.Name, want[i])
		}
		if a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %s missing doc or run function", a.Name)
		}
	}
}

// TestContractNegatives pins the clean contract fixtures: the complete
// Reset (with delegation and a promoted field), the deep Clone (with the
// repaired shallow copy), the collect-then-sort ranges, and the clean
// noalloc chain must all stay silent.
func TestContractNegatives(t *testing.T) {
	pkgs, _ := loadFixture(t)
	findings := Run(pkgs, DefaultConfig("fixturemod"), All())
	for _, f := range findings {
		for _, clean := range []string{"GoodShot", "GoodClone", "Keys", "PositiveKeys", "Mix", "Annotated"} {
			if strings.Contains(f.Message, clean) {
				t.Errorf("finding on clean fixture %s: %v", clean, f)
			}
		}
		if filepath.Base(f.Pos.Filename) == "hotdep.go" {
			t.Errorf("finding in clean package hotdep: %v", f)
		}
	}
}

// TestWriteJSONPinned freezes the JSONL shape emitted by xqlint -json:
// one object per finding, fields in exactly this order.
func TestWriteJSONPinned(t *testing.T) {
	findings := []Finding{
		{Analyzer: "maprange", Message: "range over a map"},
		{Analyzer: "xqlint", Message: `names unknown analyzer "x"`},
	}
	findings[0].Pos.Filename = "internal/a/a.go"
	findings[0].Pos.Line = 12
	findings[0].Pos.Column = 2
	findings[1].Pos.Filename = "internal/b/b.go"
	findings[1].Pos.Line = 3
	findings[1].Pos.Column = 1

	var sb strings.Builder
	if err := WriteJSON(&sb, findings); err != nil {
		t.Fatal(err)
	}
	want := `{"file":"internal/a/a.go","line":12,"col":2,"analyzer":"maprange","message":"range over a map"}
{"file":"internal/b/b.go","line":3,"col":1,"analyzer":"xqlint","message":"names unknown analyzer \"x\""}
`
	if sb.String() != want {
		t.Errorf("WriteJSON output changed; editor/CI integrations parse this format.\n--- want\n%s--- got\n%s", want, sb.String())
	}
}

// TestParseEscapeOutput checks the -gcflags=-m filter: heap lines are
// kept (with positions parsed), inlining chatter and package-banner
// lines are dropped.
func TestParseEscapeOutput(t *testing.T) {
	out := `# fixturemod/internal/hot
internal/hot/hot.go:14:6: can inline rot
internal/hot/hot.go:23:11: make([]byte, n) escapes to heap
internal/hot/hot.go:27:20: moved to heap: x
internal/hot/hot.go:30: malformed line without a column
not-a-go-file:1:2: escapes to heap
internal/hot/hot.go:abc:2: escapes to heap
`
	diags := ParseEscapeOutput(out)
	if len(diags) != 2 {
		t.Fatalf("ParseEscapeOutput returned %d diags, want 2: %+v", len(diags), diags)
	}
	if diags[0].File != "internal/hot/hot.go" || diags[0].Line != 23 || diags[0].Col != 11 ||
		diags[0].Message != "make([]byte, n) escapes to heap" {
		t.Errorf("diag[0] = %+v", diags[0])
	}
	if diags[1].Line != 27 || diags[1].Message != "moved to heap: x" {
		t.Errorf("diag[1] = %+v", diags[1])
	}
}

// TestCrossCheckEscapes matches compiler diagnostics against the
// fixture's //xqlint:noalloc spans: a heap line inside Grow becomes a
// finding (with the compiler's module-relative path suffix-matched
// against the loader's absolute one), lines outside any annotated span
// or in other files do not.
func TestCrossCheckEscapes(t *testing.T) {
	pkgs, _ := loadFixture(t)

	diags := []EscapeDiag{
		{File: "internal/hot/hot.go", Line: 23, Col: 11, Message: "make([]byte, n) escapes to heap"},
		{File: "internal/hot/hot.go", Line: 16, Col: 1, Message: "escapes to heap"}, // inside rot: not annotated
		{File: "internal/hotdep/hotdep.go", Line: 10, Col: 1, Message: "moved to heap: x"},
	}
	findings := CrossCheckEscapes(pkgs, diags)
	var got []string
	for _, f := range findings {
		got = append(got, f.Message)
	}
	want := []string{
		"escape analysis contradicts //xqlint:noalloc on Grow: make([]byte, n) escapes to heap",
		"escape analysis contradicts //xqlint:noalloc on Annotated: moved to heap: x",
	}
	if len(got) != len(want) {
		t.Fatalf("CrossCheckEscapes = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("finding[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	if findings[0].Analyzer != "noalloc" {
		t.Errorf("escape findings report under %q, want noalloc", findings[0].Analyzer)
	}
}
