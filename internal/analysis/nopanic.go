package analysis

import (
	"go/ast"
	"go/types"
)

// nopanicAnalyzer enforces the no-panic invariant: library packages under
// internal/ surface failures as returned errors, never as panic,
// log.Fatal, or os.Exit. A panic in the decode or pipeline path kills a
// whole parallel sweep instead of failing one shot; cmd/* mains and tests
// are exempt, and genuinely unreachable guards may be annotated with
// //xqlint:ignore nopanic <why it is unreachable>.
var nopanicAnalyzer = &Analyzer{
	Name: "nopanic",
	Doc:  "library packages return errors instead of calling panic, log.Fatal, or os.Exit",
	Run:  runNopanic,
}

// nopanicBanned are the process-terminating calls, by FullName.
var nopanicBanned = map[string]bool{
	"os.Exit":        true,
	"log.Fatal":      true,
	"log.Fatalf":     true,
	"log.Fatalln":    true,
	"log.Panic":      true,
	"log.Panicf":     true,
	"log.Panicln":    true,
	"runtime.Goexit": true,
}

func runNopanic(p *Pass) {
	if !p.Cfg.isLibraryPackage(p.RelPath) {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
				if obj, ok := p.Info.Uses[id].(*types.Builtin); ok && obj.Name() == "panic" {
					p.Reportf(call.Pos(), "nopanic",
						"panic in library package; return an error (annotate //xqlint:ignore nopanic <reason> only for unreachable guards)")
					return true
				}
			}
			if name := funcFullName(p.Info, call); nopanicBanned[name] {
				p.Reportf(call.Pos(), "nopanic",
					"%s in library package terminates the whole process; return an error instead", name)
			}
			return true
		})
	}
}
