package analysis

import (
	"go/ast"
	"strconv"
)

// determinismAnalyzer enforces the seed-determinism invariant: simulation
// packages (internal/*) may not import math/rand or crypto/rand directly
// — internal/xrand is the only sanctioned randomness wrapper — and may
// not read the wall clock. PR 1 made every hot-path generator a seeded
// xrand stream precisely so a (seed, config) pair reproduces a run
// bit-for-bit; one stray rand.Intn or time.Now breaks replay of failing
// verify-suite shots.
var determinismAnalyzer = &Analyzer{
	Name: "determinism",
	Doc:  "simulation packages must draw randomness via internal/xrand and never read the wall clock",
	Run:  runDeterminism,
}

func runDeterminism(p *Pass) {
	if !p.Cfg.isSimPackage(p.RelPath) {
		return
	}
	for _, f := range p.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			for _, banned := range p.Cfg.DeterminismBannedImports {
				if path == banned {
					p.Reportf(imp.Pos(), "determinism",
						"simulation package imports %q directly; use internal/xrand (the only sanctioned RNG wrapper)", path)
				}
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name := funcFullName(p.Info, call)
			if name == "" {
				return true
			}
			for _, banned := range p.Cfg.DeterminismBannedCalls {
				if name == banned {
					p.Reportf(call.Pos(), "determinism",
						"simulation package calls %s; wall-clock reads make runs irreproducible (move timing to the caller or internal/prof)", name)
				}
			}
			return true
		})
	}
}
