// Package analysis implements xqlint, the repo's custom static-analysis
// suite. It is built purely on the standard library's go/parser, go/ast,
// and go/types (no golang.org/x/tools dependency, per the repo's
// stdlib-only rule) and enforces the invariants the simulator's results
// depend on but the compiler cannot check:
//
//   - determinism: simulation packages draw randomness only through
//     internal/xrand and never read the wall clock, so a seed fully
//     determines a run.
//   - exhaustive: every switch over an enum-like type (ISA opcodes,
//     Pauli operators, device kinds, ...) covers all declared constants
//     or carries an explicit default, so adding an instruction cannot
//     silently fall through.
//   - nopanic: library packages under internal/ return errors instead of
//     calling panic, log.Fatal, or os.Exit on reachable paths.
//   - floateq: no == or != on floating-point operands.
//   - errignore: no silently discarded error returns.
//   - ctxfirst: exported functions taking a context.Context take it as
//     the first parameter, so every cancelable entry point reads the
//     same way.
//   - resetcomplete: a Reset method restores every receiver field, so a
//     reused object replays any shot bit-for-bit against fresh
//     construction; intentionally-carried fields are annotated
//     //xqlint:persistent <reason>.
//   - clonedeep: a Clone method deep-copies every reference-typed field,
//     so per-worker clones share no mutable state; deliberately-shared
//     immutable tables are annotated //xqlint:shared <reason>.
//   - maprange: no range over a map in simulation packages, except the
//     collect-then-sort idiom or bodies annotated order-insensitive —
//     Go randomizes map order, which would make output depend on the
//     run rather than the seed.
//   - noalloc: functions annotated //xqlint:noalloc (and everything they
//     call inside the module) contain no allocation sites; xqlint
//     -escapes cross-checks the annotations against the compiler's
//     escape analysis (go build -gcflags=-m).
//   - globalmut: no writes to package-level variables of simulation
//     packages outside declaration and init — hidden globals are shared
//     by every worker clone at once.
//
// A finding can be suppressed with an annotation on the offending line
// (or the line directly above):
//
//	//xqlint:ignore <analyzer>[,<analyzer>...] <reason>
//
// The reason is mandatory; an annotation without one is itself a
// finding, an annotation naming an analyzer the suite does not have is a
// finding, and — the unusedignore meta-check — a well-formed annotation
// that suppresses nothing is a finding too, so stale suppressions cannot
// rot in place.
package analysis

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"io"
	"sort"
	"strings"
)

// Finding is one analyzer diagnostic.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the finding in the canonical "file:line: analyzer:
// message" form consumed by CI and editors.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Analyzer, f.Message)
}

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass carries one loaded package through the analyzers.
type Pass struct {
	Fset *token.FileSet
	// Path is the full import path; RelPath is the module-relative form
	// ("internal/stab"; "" for the module root package) that the Config
	// prefix lists match against.
	Path    string
	RelPath string
	Files   []*ast.File
	Pkg     *types.Package
	Info    *types.Info
	Cfg     *Config

	// noallocRegistry holds the types.Func.FullName of every function
	// annotated //xqlint:noalloc across the packages in this run, so the
	// noalloc analyzer can accept cross-package calls compositionally.
	noallocRegistry map[string]bool

	findings *[]Finding
}

// Reportf records a finding at pos for the named analyzer.
func (p *Pass) Reportf(pos token.Pos, analyzer, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Pos:      p.Fset.Position(pos),
		Analyzer: analyzer,
		Message:  fmt.Sprintf(format, args...),
	})
}

// All returns the full analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		determinismAnalyzer,
		exhaustiveAnalyzer,
		nopanicAnalyzer,
		floateqAnalyzer,
		errignoreAnalyzer,
		ctxfirstAnalyzer,
		resetcompleteAnalyzer,
		clonedeepAnalyzer,
		maprangeAnalyzer,
		noallocAnalyzer,
		globalmutAnalyzer,
	}
}

// collectNoallocRegistry scans every package for //xqlint:noalloc
// function annotations and returns the annotated FullNames.
func collectNoallocRegistry(pkgs []*LoadedPackage) map[string]bool {
	reg := map[string]bool{}
	for _, lp := range pkgs {
		for _, f := range lp.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				if found, _ := funcAnnotation(fd, "noalloc"); !found {
					continue
				}
				if fn, ok := lp.Info.Defs[fd.Name].(*types.Func); ok {
					reg[fn.FullName()] = true
				}
			}
		}
	}
	return reg
}

// Run applies the analyzers to every package and returns the surviving
// findings sorted by position. Findings on lines covered by a valid
// //xqlint:ignore annotation for the matching analyzer are dropped;
// malformed annotations (no reason, or an unknown analyzer name) are
// reported under the pseudo-analyzer name "xqlint", and — the
// unusedignore meta-check — a well-formed annotation that suppresses
// nothing is itself a finding, so stale suppressions cannot rot in
// place. Unused ignores are only judged when every analyzer they name is
// part of this run; a subset run cannot prove staleness.
func Run(pkgs []*LoadedPackage, cfg *Config, analyzers []*Analyzer) []Finding {
	running := map[string]bool{}
	for _, a := range analyzers {
		running[a.Name] = true
	}
	known := map[string]bool{"xqlint": true, "unusedignore": true}
	for _, a := range All() {
		known[a.Name] = true
	}
	registry := collectNoallocRegistry(pkgs)

	var all []Finding
	for _, lp := range pkgs {
		var raw []Finding
		pass := &Pass{
			Fset:            lp.Fset,
			Path:            lp.Path,
			RelPath:         cfg.relPath(lp.Path),
			Files:           lp.Files,
			Pkg:             lp.Pkg,
			Info:            lp.Info,
			Cfg:             cfg,
			noallocRegistry: registry,
			findings:        &raw,
		}
		for _, a := range analyzers {
			a.Run(pass)
		}
		ign, anns, bad := collectIgnores(lp.Fset, lp.Files, known)
		for _, f := range raw {
			if !ign.covers(f) {
				all = append(all, f)
			}
		}
		all = append(all, bad...)
		for _, ann := range anns {
			if ann.used {
				continue
			}
			judgeable := true
			for _, name := range ann.analyzers {
				if !running[name] {
					judgeable = false
					break
				}
			}
			if judgeable {
				all = append(all, Finding{
					Pos:      ann.pos,
					Analyzer: "unusedignore",
					Message: fmt.Sprintf("//xqlint:ignore %s suppresses nothing; delete the stale annotation",
						strings.Join(ann.analyzers, ",")),
				})
			}
		}
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return all
}

// ignoreAnn is one //xqlint:ignore annotation, tracked so the
// unusedignore meta-check can flag annotations that suppress nothing.
type ignoreAnn struct {
	pos       token.Position
	analyzers []string
	used      bool
}

// ignoreSet maps (file, line, analyzer) triples to their annotation.
type ignoreSet map[string]map[int]map[string]*ignoreAnn

func (s ignoreSet) add(file string, line int, analyzer string, ann *ignoreAnn) {
	byLine, ok := s[file]
	if !ok {
		byLine = map[int]map[string]*ignoreAnn{}
		s[file] = byLine
	}
	byAn, ok := byLine[line]
	if !ok {
		byAn = map[string]*ignoreAnn{}
		byLine[line] = byAn
	}
	byAn[analyzer] = ann
}

func (s ignoreSet) covers(f Finding) bool {
	ann := s[f.Pos.Filename][f.Pos.Line][f.Analyzer]
	if ann == nil {
		return false
	}
	ann.used = true
	return true
}

// collectIgnores scans every comment for //xqlint:ignore annotations. An
// annotation suppresses matching findings on its own line (trailing
// comment) and on the next line (comment above the statement). It
// returns the suppression set, the annotations themselves (for the
// unusedignore meta-check), and findings for malformed annotations —
// missing reason, or naming an analyzer the suite does not have.
func collectIgnores(fset *token.FileSet, files []*ast.File, known map[string]bool) (ignoreSet, []*ignoreAnn, []Finding) {
	ign := ignoreSet{}
	var anns []*ignoreAnn
	var bad []Finding
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				if !strings.HasPrefix(text, "xqlint:ignore") {
					continue
				}
				rest := strings.TrimPrefix(text, "xqlint:ignore")
				pos := fset.Position(c.Pos())
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					bad = append(bad, Finding{
						Pos:      pos,
						Analyzer: "xqlint",
						Message:  "malformed ignore annotation: want //xqlint:ignore <analyzer>[,<analyzer>] <reason>",
					})
					continue
				}
				names := strings.Split(fields[0], ",")
				unknown := false
				for _, an := range names {
					if !known[an] {
						bad = append(bad, Finding{
							Pos:      pos,
							Analyzer: "xqlint",
							Message:  fmt.Sprintf("ignore annotation names unknown analyzer %q", an),
						})
						unknown = true
					}
				}
				if unknown {
					continue
				}
				ann := &ignoreAnn{pos: pos, analyzers: names}
				anns = append(anns, ann)
				for _, an := range names {
					ign.add(pos.Filename, pos.Line, an, ann)
					ign.add(pos.Filename, pos.Line+1, an, ann)
				}
			}
		}
	}
	return ign, anns, bad
}

// jsonFinding is the pinned JSONL shape emitted by xqlint -json: one
// object per line, fields in this order. Editor and CI integrations
// parse it, so the format is frozen by TestWriteJSONPinned.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// WriteJSON renders findings as JSONL (one finding per line) for
// editor/CI integration.
func WriteJSON(w io.Writer, findings []Finding) error {
	enc := json.NewEncoder(w)
	for _, f := range findings {
		jf := jsonFinding{
			File:     f.Pos.Filename,
			Line:     f.Pos.Line,
			Col:      f.Pos.Column,
			Analyzer: f.Analyzer,
			Message:  f.Message,
		}
		if err := enc.Encode(jf); err != nil {
			return err
		}
	}
	return nil
}

// funcFullName resolves the called function of a call expression to its
// types.Func.FullName form ("fmt.Println", "(*bytes.Buffer).WriteString"),
// or "" when the callee is not a named function (builtin, func value,
// conversion).
func funcFullName(info *types.Info, call *ast.CallExpr) string {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	}
	if fn, ok := obj.(*types.Func); ok {
		return fn.FullName()
	}
	return ""
}
