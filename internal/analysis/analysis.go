// Package analysis implements xqlint, the repo's custom static-analysis
// suite. It is built purely on the standard library's go/parser, go/ast,
// and go/types (no golang.org/x/tools dependency, per the repo's
// stdlib-only rule) and enforces the invariants the simulator's results
// depend on but the compiler cannot check:
//
//   - determinism: simulation packages draw randomness only through
//     internal/xrand and never read the wall clock, so a seed fully
//     determines a run.
//   - exhaustive: every switch over an enum-like type (ISA opcodes,
//     Pauli operators, device kinds, ...) covers all declared constants
//     or carries an explicit default, so adding an instruction cannot
//     silently fall through.
//   - nopanic: library packages under internal/ return errors instead of
//     calling panic, log.Fatal, or os.Exit on reachable paths.
//   - floateq: no == or != on floating-point operands.
//   - errignore: no silently discarded error returns.
//   - ctxfirst: exported functions taking a context.Context take it as
//     the first parameter, so every cancelable entry point reads the
//     same way.
//
// A finding can be suppressed with an annotation on the offending line
// (or the line directly above):
//
//	//xqlint:ignore <analyzer>[,<analyzer>...] <reason>
//
// The reason is mandatory; an annotation without one is itself a finding.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one analyzer diagnostic.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the finding in the canonical "file:line: analyzer:
// message" form consumed by CI and editors.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Analyzer, f.Message)
}

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass carries one loaded package through the analyzers.
type Pass struct {
	Fset *token.FileSet
	// Path is the full import path; RelPath is the module-relative form
	// ("internal/stab"; "" for the module root package) that the Config
	// prefix lists match against.
	Path    string
	RelPath string
	Files   []*ast.File
	Pkg     *types.Package
	Info    *types.Info
	Cfg     *Config

	findings *[]Finding
}

// Reportf records a finding at pos for the named analyzer.
func (p *Pass) Reportf(pos token.Pos, analyzer, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Pos:      p.Fset.Position(pos),
		Analyzer: analyzer,
		Message:  fmt.Sprintf(format, args...),
	})
}

// All returns the full analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		determinismAnalyzer,
		exhaustiveAnalyzer,
		nopanicAnalyzer,
		floateqAnalyzer,
		errignoreAnalyzer,
		ctxfirstAnalyzer,
	}
}

// Run applies the analyzers to every package and returns the surviving
// findings sorted by position. Findings on lines covered by a valid
// //xqlint:ignore annotation for the matching analyzer are dropped;
// malformed annotations (no reason) are reported under the pseudo-analyzer
// name "xqlint".
func Run(pkgs []*LoadedPackage, cfg *Config, analyzers []*Analyzer) []Finding {
	var all []Finding
	for _, lp := range pkgs {
		var raw []Finding
		pass := &Pass{
			Fset:     lp.Fset,
			Path:     lp.Path,
			RelPath:  cfg.relPath(lp.Path),
			Files:    lp.Files,
			Pkg:      lp.Pkg,
			Info:     lp.Info,
			Cfg:      cfg,
			findings: &raw,
		}
		for _, a := range analyzers {
			a.Run(pass)
		}
		ign, bad := collectIgnores(lp.Fset, lp.Files)
		for _, f := range raw {
			if !ign.covers(f) {
				all = append(all, f)
			}
		}
		all = append(all, bad...)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return all
}

// ignoreSet maps (file, line, analyzer) triples suppressed by annotations.
type ignoreSet map[string]map[int]map[string]bool

func (s ignoreSet) add(file string, line int, analyzer string) {
	byLine, ok := s[file]
	if !ok {
		byLine = map[int]map[string]bool{}
		s[file] = byLine
	}
	byAn, ok := byLine[line]
	if !ok {
		byAn = map[string]bool{}
		byLine[line] = byAn
	}
	byAn[analyzer] = true
}

func (s ignoreSet) covers(f Finding) bool {
	return s[f.Pos.Filename][f.Pos.Line][f.Analyzer]
}

// collectIgnores scans every comment for //xqlint:ignore annotations. An
// annotation suppresses matching findings on its own line (trailing
// comment) and on the next line (comment above the statement). It returns
// the suppression set plus findings for malformed annotations.
func collectIgnores(fset *token.FileSet, files []*ast.File) (ignoreSet, []Finding) {
	ign := ignoreSet{}
	var bad []Finding
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				if !strings.HasPrefix(text, "xqlint:ignore") {
					continue
				}
				rest := strings.TrimPrefix(text, "xqlint:ignore")
				pos := fset.Position(c.Pos())
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					bad = append(bad, Finding{
						Pos:      pos,
						Analyzer: "xqlint",
						Message:  "malformed ignore annotation: want //xqlint:ignore <analyzer>[,<analyzer>] <reason>",
					})
					continue
				}
				for _, an := range strings.Split(fields[0], ",") {
					ign.add(pos.Filename, pos.Line, an)
					ign.add(pos.Filename, pos.Line+1, an)
				}
			}
		}
	}
	return ign, bad
}

// funcFullName resolves the called function of a call expression to its
// types.Func.FullName form ("fmt.Println", "(*bytes.Buffer).WriteString"),
// or "" when the callee is not a named function (builtin, func value,
// conversion).
func funcFullName(info *types.Info, call *ast.CallExpr) string {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	}
	if fn, ok := obj.(*types.Func); ok {
		return fn.FullName()
	}
	return ""
}
