package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// resetcompleteAnalyzer enforces the shot-reuse contract pinned since PR
// 6: a method named Reset (with no parameters, or a single int64 seed)
// must restore every field of its receiver so that a reused object
// replays any shot bit-for-bit against fresh construction. The analyzer
// computes, per receiver type, the set of fields each method mutates
// (assignments, ++/--, address-taken fields, fields delegated to a call)
// and takes the transitive closure over same-receiver method calls, so
// Reset methods that delegate (l.MapLogical(...)) get full credit. A
// field the closure never touches is a finding: it is exactly the
// forgotten-field bug that otherwise surfaces as a flaky bit-mismatch
// deep in a differential test. Fields intentionally carried across shots
// (geometry, compiled programs, caches keyed by configuration rather
// than seed) are annotated //xqlint:persistent <reason> on the field
// declaration.
var resetcompleteAnalyzer = &Analyzer{
	Name: "resetcomplete",
	Doc:  "Reset methods must assign, zero, or delegate every receiver field, or annotate it //xqlint:persistent",
	Run:  runResetcomplete,
}

func runResetcomplete(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Name != "Reset" || fd.Recv == nil || fd.Body == nil {
				continue
			}
			if !isResetSignature(p, fd) {
				continue
			}
			named, _, ok := recvNamedStruct(p, fd)
			if !ok {
				continue
			}
			// Value receivers cannot reset anything that outlives the
			// call; the nopanic/clonedeep-style contracts only make sense
			// on pointer receivers.
			if _, isPtr := p.Info.Defs[fd.Recv.List[0].Names[0]].Type().(*types.Pointer); !isPtr {
				continue
			}
			st := structDeclOf(p, named)
			if st == nil {
				continue
			}
			persistent := structFieldAnnotations(p, st, "persistent")
			handled := mutatedFieldClosure(p, named, fd.Name.Name)
			strct := named.Underlying().(*types.Struct)
			for i := 0; i < strct.NumFields(); i++ {
				fld := strct.Field(i)
				if persistent[fld.Name()] || handled.all || handled.fields[fld.Name()] {
					continue
				}
				p.Reportf(fd.Name.Pos(), "resetcomplete",
					"(%s).Reset does not reset field %s; assign or zero it, or annotate the field //xqlint:persistent <reason>",
					named.Obj().Name(), fld.Name())
			}
		}
	}
}

// isResetSignature restricts the contract to the shot-reuse shape:
// Reset() or Reset(seed int64). Builder-style Reset(q int) methods (a
// circuit op, a tableau qubit reset) are a different verb entirely.
func isResetSignature(p *Pass, fd *ast.FuncDecl) bool {
	params := fd.Type.Params
	if params == nil || len(params.List) == 0 {
		return true
	}
	if len(params.List) != 1 || len(params.List[0].Names) > 1 {
		return false
	}
	t := p.Info.TypeOf(params.List[0].Type)
	basic, ok := t.(*types.Basic)
	return ok && basic.Kind() == types.Int64
}

// fieldSet is the mutation summary of one method closure.
type fieldSet struct {
	fields map[string]bool
	all    bool // the whole receiver was overwritten (*b = ...)
}

// mutatedFieldClosure returns the fields of named that the method with
// the given name mutates, directly or through same-receiver method
// calls (transitively, within this package). "Mutates" is deliberately
// generous: assignment under any index/selector chain rooted at the
// field, ++/--, taking the field's address, passing the field to any
// call (clear(m), clearBools(b.synActive), copy into it), or invoking a
// method on the field (b.buf.Reset()).
func mutatedFieldClosure(p *Pass, named *types.Named, method string) fieldSet {
	type summary struct {
		set   fieldSet
		calls map[string]bool
	}
	summaries := map[string]*summary{}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			mNamed, recv, ok := recvNamedStruct(p, fd)
			if !ok || mNamed.Obj() != named.Obj() {
				continue
			}
			s := &summary{set: fieldSet{fields: map[string]bool{}}, calls: map[string]bool{}}
			collectMutations(p, recv, fd.Body, s.set.fields, &s.set.all, s.calls)
			summaries[fd.Name.Name] = s
		}
	}

	out := fieldSet{fields: map[string]bool{}}
	seen := map[string]bool{}
	work := []string{method}
	for len(work) > 0 {
		name := work[len(work)-1]
		work = work[:len(work)-1]
		if seen[name] {
			continue
		}
		seen[name] = true
		s, ok := summaries[name]
		if !ok {
			continue
		}
		out.all = out.all || s.set.all
		//xqlint:ignore maprange set union; order cannot matter
		for f := range s.set.fields {
			out.fields[f] = true
		}
		//xqlint:ignore maprange worklist order only affects visit order of a fixed point
		for callee := range s.calls {
			work = append(work, callee)
		}
	}
	return out
}

// collectMutations walks a method body recording mutated receiver fields
// and same-receiver method calls.
func collectMutations(p *Pass, recv *types.Var, body *ast.BlockStmt, fields map[string]bool, all *bool, calls map[string]bool) {
	markLHS := func(e ast.Expr) {
		if isRecvExpr(p, recv, e) {
			*all = true
			return
		}
		if f := rootField(p, recv, e); f != "" {
			fields[f] = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				markLHS(lhs)
			}
		case *ast.IncDecStmt:
			markLHS(n.X)
		case *ast.UnaryExpr:
			// &recv.field: the address escapes to something that may
			// write through it (p := &l.Patches[i]; p.Dynamic = ...).
			if n.Op == token.AND {
				if f := rootField(p, recv, n.X); f != "" {
					fields[f] = true
				}
			}
		case *ast.RangeStmt:
			// for i := range recv.f with an assignment through the index
			// is credited by the assignment itself; the range clause is a
			// read and earns nothing.
		case *ast.CallExpr:
			// recv.Method(...): transitive credit via the closure. A
			// promoted method (l.MapLogical on an embedded *Lattice)
			// credits the embedded field it mutates through instead.
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
				if isRecvExpr(p, recv, sel.X) {
					if f := promotedVia(p, recv, sel); f != "" {
						fields[f] = true
					} else {
						calls[sel.Sel.Name] = true
					}
				} else if f := rootField(p, recv, sel.X); f != "" {
					// recv.field.Method(...): delegated reset.
					fields[f] = true
				}
			}
			// recv.field passed to any call (clear, clearBools, copy...).
			for _, arg := range n.Args {
				if f := rootField(p, recv, arg); f != "" {
					fields[f] = true
				}
			}
		}
		return true
	})
}
