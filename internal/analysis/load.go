package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// LoadedPackage is one parsed and type-checked package.
type LoadedPackage struct {
	Path  string // import path
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	// TypeErrors holds the type-checker's complaints; analysis results
	// on an ill-typed package are unreliable, so callers should surface
	// these and bail.
	TypeErrors []error
}

// Loader parses and type-checks packages of a single module from source,
// using only the standard library: module-internal imports are resolved
// recursively by the loader itself, everything else falls back to the
// stdlib source importer.
type Loader struct {
	Fset       *token.FileSet
	ModulePath string
	ModuleDir  string

	std     types.Importer
	pkgs    map[string]*LoadedPackage
	loading map[string]bool
}

// NewLoader locates the module containing dir (by walking up to go.mod)
// and returns a loader rooted there.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("analysis: no go.mod found above %s", abs)
		}
		root = parent
	}
	modPath, err := moduleName(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:       fset,
		ModulePath: modPath,
		ModuleDir:  root,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       map[string]*LoadedPackage{},
		loading:    map[string]bool{},
	}, nil
}

// moduleName extracts the module path from a go.mod file.
func moduleName(path string) (string, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(b), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			name := strings.TrimSpace(rest)
			if name != "" {
				return strings.Trim(name, `"`), nil
			}
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s", path)
}

// Import implements types.Importer: module-internal paths load from
// source through the loader, the rest through the stdlib importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		lp, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return lp.Pkg, nil
	}
	return l.std.Import(path)
}

// dirFor maps a module-internal import path to its directory.
func (l *Loader) dirFor(path string) string {
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
	return filepath.Join(l.ModuleDir, filepath.FromSlash(rel))
}

// sourceFiles lists the package's non-test Go files in stable order.
func sourceFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		out = append(out, filepath.Join(dir, name))
	}
	sort.Strings(out)
	return out, nil
}

// Load parses and type-checks the module-internal package at the given
// import path (memoized).
func (l *Loader) Load(path string) (*LoadedPackage, error) {
	if lp, ok := l.pkgs[path]; ok {
		return lp, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := l.dirFor(path)
	names, err := sourceFiles(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	lp := &LoadedPackage{
		Path:  path,
		Dir:   dir,
		Fset:  l.Fset,
		Files: files,
		Info: &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
		},
	}
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { lp.TypeErrors = append(lp.TypeErrors, err) },
	}
	pkg, err := conf.Check(path, l.Fset, files, lp.Info)
	if err != nil && len(lp.TypeErrors) == 0 {
		return nil, err
	}
	lp.Pkg = pkg
	l.pkgs[path] = lp
	return lp, nil
}

// Expand resolves package patterns to module-internal import paths. A
// pattern is either a directory (absolute, or relative to the module
// root: ".", "./internal/stab"), an import path, or either of those with
// a trailing "/..." wildcard that walks the tree for Go packages
// (skipping testdata, vendor, hidden, and underscore directories).
func (l *Loader) Expand(patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var out []string
	add := func(path string) {
		if !seen[path] {
			seen[path] = true
			out = append(out, path)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if pat == "..." {
			pat, recursive = ".", true
		} else if strings.HasSuffix(pat, "/...") {
			pat, recursive = strings.TrimSuffix(pat, "/..."), true
		}
		dir, err := l.patternDir(pat)
		if err != nil {
			return nil, err
		}
		if !recursive {
			path, ok, err := l.importPathOf(dir)
			if err != nil {
				return nil, err
			}
			if !ok {
				return nil, fmt.Errorf("analysis: no Go files in %s", dir)
			}
			add(path)
			continue
		}
		err = filepath.WalkDir(dir, func(p string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != dir && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			path, ok, err := l.importPathOf(p)
			if err != nil {
				return err
			}
			if ok {
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// patternDir maps a non-wildcard pattern to a directory.
func (l *Loader) patternDir(pat string) (string, error) {
	if filepath.IsAbs(pat) {
		return pat, nil
	}
	if pat == "." || strings.HasPrefix(pat, "./") || strings.HasPrefix(pat, "../") {
		return filepath.Abs(pat)
	}
	if pat == l.ModulePath || strings.HasPrefix(pat, l.ModulePath+"/") {
		return l.dirFor(pat), nil
	}
	return filepath.Abs(pat)
}

// importPathOf maps a directory inside the module to its import path; ok
// is false when the directory holds no non-test Go files.
func (l *Loader) importPathOf(dir string) (string, bool, error) {
	names, err := sourceFiles(dir)
	if err != nil || len(names) == 0 {
		return "", false, err
	}
	rel, err := filepath.Rel(l.ModuleDir, dir)
	if err != nil {
		return "", false, err
	}
	if strings.HasPrefix(rel, "..") {
		return "", false, fmt.Errorf("analysis: %s is outside module %s", dir, l.ModuleDir)
	}
	if rel == "." {
		return l.ModulePath, true, nil
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel), true, nil
}
