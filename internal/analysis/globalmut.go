package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// globalmutAnalyzer forbids mutable package-level state in simulation
// packages: PR 7's per-worker Clone contract promises that clones share
// no mutable state, and a hidden package variable is shared by every
// clone at once — the one channel the contract cannot see. Package vars
// must therefore be immutable tables (initialized at declaration or in
// init, never written afterwards) or sync machinery (sync.Map,
// sync.Pool, atomics — safe by construction). Any other write to a
// package-level variable owned by a simulation package is a finding,
// wherever the write appears; mutations that are genuinely guarded
// (blockCacheMu-style) are annotated
// //xqlint:ignore globalmut <which lock guards this>.
var globalmutAnalyzer = &Analyzer{
	Name: "globalmut",
	Doc:  "no writes to package-level variables of simulation packages outside declaration and init",
	Run:  runGlobalmut,
}

// globalmutSyncTypes are types whose package-level use is sanctioned:
// their mutation goes through their own synchronized methods, never
// through an assignment the analyzer would see, and assignments to
// them (re-zeroing a mutex) are a different bug class.
var globalmutSyncTypes = map[string]bool{
	"sync.Mutex":     true,
	"sync.RWMutex":   true,
	"sync.Once":      true,
	"sync.Pool":      true,
	"sync.Map":       true,
	"sync.WaitGroup": true,
}

func runGlobalmut(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			// init functions run single-threaded before main: writes
			// there are the immutable-table construction idiom.
			if fd.Name.Name == "init" && fd.Recv == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					for _, lhs := range n.Lhs {
						checkGlobalWrite(p, lhs)
					}
				case *ast.IncDecStmt:
					checkGlobalWrite(p, n.X)
				}
				return true
			})
		}
	}
}

// checkGlobalWrite reports a write whose left side is rooted at a
// package-level variable belonging to a simulation package.
func checkGlobalWrite(p *Pass, lhs ast.Expr) {
	v := rootPackageVar(p, lhs)
	if v == nil {
		return
	}
	pkg := v.Pkg()
	if pkg == nil {
		return
	}
	rel, ok := moduleRelPath(p.Cfg, pkg.Path())
	if !ok || !p.Cfg.isSimPackage(rel) {
		return
	}
	if isSyncType(v.Type()) {
		return
	}
	p.Reportf(lhs.Pos(), "globalmut",
		"write to package-level var %s of simulation package %s; hidden globals break per-worker clone determinism (make it an immutable table, or annotate //xqlint:ignore globalmut <guarding lock>)",
		v.Name(), rel)
}

// rootPackageVar peels an lvalue (x, x[i], x.f, *x) to a package-level
// variable, either a plain identifier or a pkg.Var selector.
func rootPackageVar(p *Pass, e ast.Expr) *types.Var {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.SelectorExpr:
			if id, ok := ast.Unparen(x.X).(*ast.Ident); ok {
				if _, isPkg := p.Info.Uses[id].(*types.PkgName); isPkg {
					v, _ := p.Info.Uses[x.Sel].(*types.Var)
					return packageLevel(v)
				}
			}
			e = x.X
		case *ast.Ident:
			v, _ := p.Info.Uses[x].(*types.Var)
			return packageLevel(v)
		default:
			return nil
		}
	}
}

// packageLevel filters v down to package-scope variables.
func packageLevel(v *types.Var) *types.Var {
	if v == nil || v.Pkg() == nil {
		return nil
	}
	if v.Parent() != v.Pkg().Scope() {
		return nil
	}
	return v
}

// isSyncType reports sync machinery (and sync/atomic types), which are
// exempt: their whole point is safe shared mutation.
func isSyncType(t types.Type) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	full := obj.Pkg().Path() + "." + obj.Name()
	return globalmutSyncTypes[full] || strings.HasPrefix(full, "sync/atomic.")
}

// moduleRelPath maps an import path to its module-relative form; ok is
// false for paths outside the module.
func moduleRelPath(c *Config, importPath string) (string, bool) {
	if importPath == c.ModulePath {
		return "", true
	}
	if rest, ok := strings.CutPrefix(importPath, c.ModulePath+"/"); ok {
		return rest, true
	}
	return "", false
}
