package analysis

import (
	"go/ast"
	"go/types"
)

// errignoreAnalyzer flags calls whose error result is silently dropped:
// a call with an error among its results used as a bare statement, or
// behind defer/go. A swallowed Fprintf error turns a truncated sweep
// report into a silently wrong one. An explicit blank assignment
// (`_ = f()`) is the sanctioned way to drop an error on purpose — it is
// visible in review — and the config allowlists writers that are
// documented to never fail.
var errignoreAnalyzer = &Analyzer{
	Name: "errignore",
	Doc:  "no silently discarded error returns; assign to _ explicitly or handle",
	Run:  runErrignore,
}

func runErrignore(p *Pass) {
	errIface := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	returnsError := func(call *ast.CallExpr) bool {
		t := p.Info.TypeOf(call)
		if t == nil {
			return false
		}
		switch t := t.(type) {
		case *types.Tuple:
			for i := 0; i < t.Len(); i++ {
				if types.Implements(t.At(i).Type(), errIface) {
					return true
				}
			}
			return false
		default:
			return types.Implements(t, errIface)
		}
	}
	// fmt.Fprint* into an in-memory buffer cannot fail: strings.Builder
	// and bytes.Buffer document that their Write methods always return a
	// nil error, so the fmt wrapper's error is structurally dead there.
	infallibleWriter := func(call *ast.CallExpr) bool {
		if len(call.Args) == 0 {
			return false
		}
		t := p.Info.TypeOf(call.Args[0])
		ptr, ok := t.(*types.Pointer)
		if !ok {
			return false
		}
		named, ok := types.Unalias(ptr.Elem()).(*types.Named)
		if !ok {
			return false
		}
		obj := named.Obj()
		if obj.Pkg() == nil {
			return false
		}
		full := obj.Pkg().Path() + "." + obj.Name()
		return full == "strings.Builder" || full == "bytes.Buffer"
	}
	check := func(call *ast.CallExpr, how string) {
		if !returnsError(call) {
			return
		}
		name := funcFullName(p.Info, call)
		if name != "" && p.Cfg.errignoreAllowed(name) {
			return
		}
		if (name == "fmt.Fprint" || name == "fmt.Fprintf" || name == "fmt.Fprintln") &&
			infallibleWriter(call) {
			return
		}
		if name == "" {
			name = "call"
		}
		p.Reportf(call.Pos(), "errignore",
			"%s result of %s is discarded%s; handle it or assign to _ explicitly", "error", name, how)
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					check(call, "")
				}
			case *ast.DeferStmt:
				check(n.Call, " (deferred)")
			case *ast.GoStmt:
				check(n.Call, " (goroutine)")
			}
			return true
		})
	}
}
