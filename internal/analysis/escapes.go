package analysis

import (
	"go/ast"
	"strconv"
	"strings"
)

// This file implements the -escapes cross-check: the noalloc analyzer is
// an AST-level approximation, so xqlint -escapes corroborates it against
// the compiler's actual escape analysis. cmd/xqlint runs
// `go build -gcflags=-m` and feeds the diagnostic stream to
// CrossCheckEscapes, which flags every heap allocation the compiler
// reports inside a function annotated //xqlint:noalloc. The two gates
// fail independently: the AST check catches a stray make the moment it
// is typed, the escape check catches allocations the AST cannot see
// (captured variables moved to the heap, boxing the compiler could not
// elide), and the runtime AllocsPerRun tests catch whatever both miss.

// EscapeDiag is one parsed `go build -gcflags=-m` diagnostic.
type EscapeDiag struct {
	File    string // as printed by the compiler (usually module-relative)
	Line    int
	Col     int
	Message string
}

// ParseEscapeOutput extracts the heap-allocation diagnostics from a
// -gcflags=-m output stream, dropping inlining chatter and non-heap
// lines.
func ParseEscapeOutput(out string) []EscapeDiag {
	var diags []EscapeDiag
	for _, line := range strings.Split(out, "\n") {
		line = strings.TrimSpace(line)
		if !strings.Contains(line, "escapes to heap") && !strings.Contains(line, "moved to heap") {
			continue
		}
		parts := strings.SplitN(line, ":", 4)
		if len(parts) != 4 || !strings.HasSuffix(parts[0], ".go") {
			continue
		}
		ln, err1 := strconv.Atoi(parts[1])
		col, err2 := strconv.Atoi(parts[2])
		if err1 != nil || err2 != nil {
			continue
		}
		diags = append(diags, EscapeDiag{
			File:    parts[0],
			Line:    ln,
			Col:     col,
			Message: strings.TrimSpace(parts[3]),
		})
	}
	return diags
}

// CrossCheckEscapes matches escape diagnostics against the spans of
// //xqlint:noalloc functions in the loaded packages and returns a
// finding for every heap allocation the compiler places inside one.
func CrossCheckEscapes(pkgs []*LoadedPackage, diags []EscapeDiag) []Finding {
	type span struct {
		file       string
		start, end int
		fn         string
	}
	var spans []span
	for _, lp := range pkgs {
		for _, f := range lp.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if found, _ := funcAnnotation(fd, "noalloc"); !found {
					continue
				}
				start := lp.Fset.Position(fd.Pos())
				end := lp.Fset.Position(fd.End())
				spans = append(spans, span{
					file:  start.Filename,
					start: start.Line,
					end:   end.Line,
					fn:    fd.Name.Name,
				})
			}
		}
	}
	var findings []Finding
	for _, d := range diags {
		for _, s := range spans {
			if d.Line < s.start || d.Line > s.end {
				continue
			}
			if s.file != d.File && !strings.HasSuffix(s.file, "/"+d.File) {
				continue
			}
			f := Finding{Analyzer: "noalloc"}
			f.Pos.Filename = s.file
			f.Pos.Line = d.Line
			f.Pos.Column = d.Col
			f.Message = "escape analysis contradicts //xqlint:noalloc on " + s.fn + ": " + d.Message
			findings = append(findings, f)
			break
		}
	}
	return findings
}
