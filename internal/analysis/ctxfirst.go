package analysis

import (
	"go/ast"
	"go/types"
)

// ctxfirstAnalyzer flags exported functions and methods that accept a
// context.Context anywhere but as the first parameter. The runtime
// threads cancellation through RunShots, the sweep drivers, and the
// pipeline; the ctx-first convention is what lets a reader (and the
// signal handlers in cmd/*) assume every ctx-taking entry point is
// cancelable the same way. A context buried mid-signature is the
// standard prelude to one that is accepted but never consulted.
var ctxfirstAnalyzer = &Analyzer{
	Name: "ctxfirst",
	Doc:  "exported functions taking a context.Context must take it as the first parameter",
	Run:  runCtxfirst,
}

func runCtxfirst(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !fd.Name.IsExported() || fd.Type.Params == nil {
				continue
			}
			idx := 0
			for _, field := range fd.Type.Params.List {
				// An anonymous field still occupies one parameter slot.
				n := len(field.Names)
				if n == 0 {
					n = 1
				}
				if isContextType(p.Info.TypeOf(field.Type)) && idx > 0 {
					p.Reportf(field.Type.Pos(), "ctxfirst",
						"exported %s takes context.Context as parameter %d; make it the first parameter",
						fd.Name.Name, idx+1)
				}
				idx += n
			}
		}
	}
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
