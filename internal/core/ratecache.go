package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"xqsim/internal/decoder"
)

// rateKey identifies one steady-state rate measurement. Rates are a pure
// function of these four inputs (the reference workload shape is fixed at
// 4 LQ / 6 PPRs), so repeated measurements can be shared.
type rateKey struct {
	d         int
	physError float64
	scheme    decoder.Scheme
	seed      int64
}

// rateEntry is a singleflight cell: the first caller to claim the key
// runs the pipeline inside once; concurrent callers for the same key
// block on it and then read the settled value.
type rateEntry struct {
	once  sync.Once
	rates Rates
}

var (
	rateCache sync.Map // rateKey -> *rateEntry
	// rateMisses counts actual pipeline executions (cache fills), for
	// tests and for judging sweep-level reuse.
	rateMisses atomic.Int64
	// ratePersist, when set, backs the in-process memoization with a
	// durable second level (the xqd daemon's result store), making rate
	// measurements a cross-process cache.
	ratePersist atomic.Pointer[RateStore]
)

// RateStore is a durable second-level cache for MeasureRates. Load
// returns the stored rates for a key (false when absent or unreadable);
// Store persists a fresh measurement. Implementations must be safe for
// concurrent use. Errors are the implementation's to handle: a failed
// Store must simply not surface on a later Load.
type RateStore interface {
	LoadRates(key string) (Rates, bool)
	StoreRates(key string, r Rates)
}

// EnableRatePersistence installs (or, with nil, removes) the durable
// second-level rate cache. Already-memoized in-process entries are
// unaffected. The store only ever receives keys produced by RateCacheKey.
func EnableRatePersistence(rs RateStore) {
	if rs == nil {
		ratePersist.Store(nil)
		return
	}
	ratePersist.Store(&rs)
}

// RateCacheKey renders a rate measurement's identifying inputs as the
// stable string key used with a RateStore. %g on physError is exact:
// it round-trips any float64.
func RateCacheKey(d int, physError float64, scheme decoder.Scheme, seed int64) string {
	return fmt.Sprintf("rates/d=%d,p=%g,scheme=%d,seed=%d", d, physError, int(scheme), seed)
}

// MeasureRates runs the full pipeline (scaling mode, no tableau) on a
// random-PPR workload at a reference scale and extracts the rates.
//
// Results are memoized per (d, physError, scheme, seed): the sweep grids
// re-measure the same operating point many times (every figure starts
// from the same d=15 reference run), and a rate measurement is by far the
// most expensive step of a sweep. The memoization is concurrency-safe
// and single-flight — parallel callers asking for the same key run one
// pipeline, not N. Use MeasureRatesUncached to force a fresh run (e.g.
// when profiling the pipeline itself).
func MeasureRates(d int, physError float64, scheme decoder.Scheme, seed int64) Rates {
	key := rateKey{d: d, physError: physError, scheme: scheme, seed: seed}
	e, ok := rateCache.Load(key)
	if !ok {
		e, _ = rateCache.LoadOrStore(key, &rateEntry{})
	}
	entry := e.(*rateEntry)
	entry.once.Do(func() {
		if p := ratePersist.Load(); p != nil {
			if r, ok := (*p).LoadRates(RateCacheKey(d, physError, scheme, seed)); ok {
				entry.rates = r
				return
			}
		}
		rateMisses.Add(1)
		entry.rates = measureRatesN(d, physError, scheme, seed, 4, 6)
		if p := ratePersist.Load(); p != nil {
			(*p).StoreRates(RateCacheKey(d, physError, scheme, seed), entry.rates)
		}
	})
	return entry.rates
}

// MeasureRatesUncached bypasses the memoization and always runs the
// pipeline. It does not populate the cache.
func MeasureRatesUncached(d int, physError float64, scheme decoder.Scheme, seed int64) Rates {
	return measureRatesN(d, physError, scheme, seed, 4, 6)
}
