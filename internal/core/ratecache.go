package core

import (
	"sync"
	"sync/atomic"

	"xqsim/internal/decoder"
)

// rateKey identifies one steady-state rate measurement. Rates are a pure
// function of these four inputs (the reference workload shape is fixed at
// 4 LQ / 6 PPRs), so repeated measurements can be shared.
type rateKey struct {
	d         int
	physError float64
	scheme    decoder.Scheme
	seed      int64
}

// rateEntry is a singleflight cell: the first caller to claim the key
// runs the pipeline inside once; concurrent callers for the same key
// block on it and then read the settled value.
type rateEntry struct {
	once  sync.Once
	rates Rates
}

var (
	rateCache sync.Map // rateKey -> *rateEntry
	// rateMisses counts actual pipeline executions (cache fills), for
	// tests and for judging sweep-level reuse.
	rateMisses atomic.Int64
)

// MeasureRates runs the full pipeline (scaling mode, no tableau) on a
// random-PPR workload at a reference scale and extracts the rates.
//
// Results are memoized per (d, physError, scheme, seed): the sweep grids
// re-measure the same operating point many times (every figure starts
// from the same d=15 reference run), and a rate measurement is by far the
// most expensive step of a sweep. The memoization is concurrency-safe
// and single-flight — parallel callers asking for the same key run one
// pipeline, not N. Use MeasureRatesUncached to force a fresh run (e.g.
// when profiling the pipeline itself).
func MeasureRates(d int, physError float64, scheme decoder.Scheme, seed int64) Rates {
	key := rateKey{d: d, physError: physError, scheme: scheme, seed: seed}
	e, ok := rateCache.Load(key)
	if !ok {
		e, _ = rateCache.LoadOrStore(key, &rateEntry{})
	}
	entry := e.(*rateEntry)
	entry.once.Do(func() {
		rateMisses.Add(1)
		entry.rates = measureRatesN(d, physError, scheme, seed, 4, 6)
	})
	return entry.rates
}

// MeasureRatesUncached bypasses the memoization and always runs the
// pipeline. It does not populate the cache.
func MeasureRatesUncached(d int, physError float64, scheme decoder.Scheme, seed int64) Rates {
	return measureRatesN(d, physError, scheme, seed, 4, 6)
}
