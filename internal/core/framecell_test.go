package core_test

import (
	"context"
	"testing"

	"xqsim/internal/core"
)

// TestFrameMemoryCellMatchesFrameLogicalErrorRate: the serial reusable
// cell and the parallel per-call API decode the same deterministic shot
// stream, so their rates are exactly equal.
func TestFrameMemoryCellMatchesFrameLogicalErrorRate(t *testing.T) {
	ctx := context.Background()
	for _, tc := range []struct {
		d     int
		p     float64
		shots int
	}{
		{3, 0.02, 500},
		{3, 0.01, 130}, // partial final block
		{5, 0.01, 256},
	} {
		cell, err := core.NewFrameMemoryCell(tc.d, tc.p, tc.d, 7)
		if err != nil {
			t.Fatal(err)
		}
		got, err := cell.Rate(ctx, tc.shots)
		if err != nil {
			t.Fatal(err)
		}
		want, err := core.FrameLogicalErrorRate(ctx, tc.d, tc.p, tc.d, tc.shots, 7)
		if err != nil {
			t.Fatal(err)
		}
		//xqlint:ignore floateq both are fail-counts divided by the same shot total
		if got != want {
			t.Fatalf("d=%d p=%v shots=%d: cell rate %v != FrameLogicalErrorRate %v",
				tc.d, tc.p, tc.shots, got, want)
		}
	}
}

// TestFrameMemoryCellRepeatable: Rate rewinds the sampler, so repeated
// calls return the identical value, and a clone decodes the same stream.
func TestFrameMemoryCellRepeatable(t *testing.T) {
	ctx := context.Background()
	cell, err := core.NewFrameMemoryCell(3, 0.02, 3, 11)
	if err != nil {
		t.Fatal(err)
	}
	first, err := cell.Rate(ctx, 300)
	if err != nil {
		t.Fatal(err)
	}
	again, err := cell.Rate(ctx, 300)
	if err != nil {
		t.Fatal(err)
	}
	cloned, err := cell.Clone().Rate(ctx, 300)
	if err != nil {
		t.Fatal(err)
	}
	//xqlint:ignore floateq identical deterministic streams must produce identical counts
	if first != again || first != cloned {
		t.Fatalf("rates diverge: first %v, again %v, clone %v", first, again, cloned)
	}
}

// TestFrameMemoryCellValidation mirrors the FrameLogicalErrorRate
// parameter checks at the cell constructor.
func TestFrameMemoryCellValidation(t *testing.T) {
	for _, tc := range []struct{ d, rounds int }{{2, 3}, {1, 3}, {4, 3}, {3, 0}} {
		if _, err := core.NewFrameMemoryCell(tc.d, 0.01, tc.rounds, 1); err == nil {
			t.Errorf("d=%d rounds=%d: expected an error", tc.d, tc.rounds)
		}
	}
	cell, err := core.NewFrameMemoryCell(3, 0.01, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	rate, err := cell.Rate(context.Background(), 0)
	if err != nil || rate != 0 {
		t.Fatalf("zero shots: rate=%v err=%v, want 0, nil", rate, err)
	}
}

// TestFrameMemoryCellSteadyStateAllocs pins the compiled cell's shot
// loop at zero heap allocations after warmup.
func TestFrameMemoryCellSteadyStateAllocs(t *testing.T) {
	ctx := context.Background()
	cell, err := core.NewFrameMemoryCell(3, 0.02, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	run := func() {
		if _, err := cell.Rate(ctx, 256); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		run() // warm up lazily-grown decoder scratch
	}
	if avg := testing.AllocsPerRun(16, run); avg != 0 {
		t.Fatalf("steady-state cell allocates %.1f times, want 0", avg)
	}
}
