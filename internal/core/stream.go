package core

import (
	"context"
	"fmt"
	"math/bits"
	"runtime"
	"sync"

	"xqsim/internal/decoder"
	"xqsim/internal/faults"
	"xqsim/internal/pauli"
	"xqsim/internal/stab"
	"xqsim/internal/surface"
)

// StreamMemoryConfig configures a real-time streaming memory experiment:
// the distance-d memory circuit's syndrome rounds are replayed one at a
// time through a decoder.StreamDecoder, so the decode backend's latency
// (measured against BudgetCycles per ESM round) feeds the syndrome-buffer
// backlog and, under overload, visibly degrades the logical error rate.
type StreamMemoryConfig struct {
	D         int
	PhysError float64
	Rounds    int
	// Backend is the decode implementation (nil: the exact matcher); each
	// cell installs its own Clone.
	Backend decoder.Backend
	// WindowRounds, BudgetCycles, BufferRounds, and Policy are the
	// streaming-decode knobs (see decoder.StreamConfig). BudgetCycles 0
	// disables latency pressure, reducing the experiment to
	// FrameLogicalErrorRate's whole-shot decode bit-for-bit.
	WindowRounds int
	BudgetCycles uint64
	BufferRounds int
	Policy       faults.Policy
}

// StreamMemoryResult is the outcome of a streamed memory experiment.
type StreamMemoryResult struct {
	// Rate is the logical Z-memory failure fraction.
	Rate float64
	// Shots and Fails are the raw counts behind Rate.
	Shots int
	Fails int
	// Stats aggregates the per-shot stream accounting (integer sums, so
	// the reduction is order-independent under parallel workers; the two
	// Max fields take the maximum instead).
	Stats decoder.StreamStats
}

// StreamMemoryCell is the streaming counterpart of FrameMemoryCell: the
// same compiled bit-sliced batch sampler, but failing lanes replay their
// syndrome rounds through a StreamDecoder instead of decoding the final
// accumulated syndrome in one shot. Lanes with no detection events and no
// logical flip are skipped exactly as in FrameMemoryCell — a quiet lane's
// windows all decode empty syndromes at zero cycles, so skipping it
// cannot change drops, stats beyond round counts, or the verdict.
//
// A cell is single-goroutine; Clone gives each worker its own sampler
// position, stream decoder, and backend scratch.
type StreamMemoryCell struct {
	cfg  StreamMemoryConfig
	code surface.Code
	bs   *stab.BatchFrameSampler

	// zOff[k] is the k-th Z-stabilizer's index within one round's
	// measurement block (round r measures it at r*roundLen+zOff[k]);
	// zAnc[k] its plaquette cell.
	zOff     []int           //xqlint:shared immutable decode indices built at construction
	zAnc     []surface.Coord //xqlint:shared immutable decode indices built at construction
	roundLen int
	// logicalMis and refMask are as in FrameMemoryCell.
	logicalMis []int    //xqlint:shared immutable decode indices built at construction
	refMask    []uint64 //xqlint:shared write-once reference mask shared by every worker

	sd     *decoder.StreamDecoder
	events *decoder.SyndromeBitmap
	prev   []uint8 // previous round's flip bit per Z-stabilizer
	fails  int
	stats  decoder.StreamStats
	fn     func(base, lanes int, cols []uint64)
}

// NewStreamMemoryCell compiles the memory experiment and builds the
// stream decoder. Shot k is fixed by the frame sampler's determinism
// contract for the given seed.
func NewStreamMemoryCell(cfg StreamMemoryConfig, seed int64) (*StreamMemoryCell, error) {
	if cfg.D < 3 || cfg.D%2 == 0 {
		return nil, fmt.Errorf("core: stream memory cell: invalid code distance %d", cfg.D)
	}
	if cfg.Rounds < 1 {
		return nil, fmt.Errorf("core: stream memory cell: rounds must be >= 1, got %d", cfg.Rounds)
	}
	code := surface.NewCode(cfg.D)
	circ := code.MemoryCircuit(cfg.Rounds, cfg.PhysError, cfg.PhysError)
	bs, err := stab.NewBatchFrameSampler(circ, seed)
	if err != nil {
		return nil, fmt.Errorf("core: stream memory cell: %w", err)
	}
	backend := cfg.Backend
	if backend == nil {
		backend = decoder.NewMatchingBackend()
	}
	sd, err := decoder.NewStreamDecoder(decoder.StreamConfig{
		Code: code, Basis: pauli.Z, Backend: backend.Clone(),
		WindowRounds: cfg.WindowRounds, BudgetCycles: cfg.BudgetCycles,
		BufferRounds: cfg.BufferRounds, Policy: cfg.Policy,
	})
	if err != nil {
		return nil, fmt.Errorf("core: stream memory cell: %w", err)
	}
	c := &StreamMemoryCell{
		cfg: cfg, code: code, bs: bs, sd: sd,
		events: decoder.NewSyndromeBitmap(code),
	}
	stabs := code.Stabilizers()
	c.roundLen = len(stabs)
	for i, st := range stabs {
		if st.Basis == pauli.Z {
			c.zOff = append(c.zOff, i)
			c.zAnc = append(c.zAnc, st.Anc)
		}
	}
	dataBase := cfg.Rounds * len(stabs)
	for _, q := range code.LogicalZ() {
		c.logicalMis = append(c.logicalMis, dataBase+code.DataIndex(q))
	}
	c.refMask = make([]uint64, bs.Measurements())
	for i := range c.refMask {
		if bs.RefBit(i) {
			c.refMask[i] = ^uint64(0)
		}
	}
	c.prev = make([]uint8, len(c.zOff))
	c.fn = c.decodeColumns
	return c, nil
}

// Clone returns a cell over the same compiled circuit with its own
// sampler position, stream decoder, and backend scratch, for concurrent
// workers.
func (c *StreamMemoryCell) Clone() *StreamMemoryCell {
	n := *c
	n.bs = c.bs.Clone()
	sd, err := decoder.NewStreamDecoder(decoder.StreamConfig{
		Code: c.code, Basis: pauli.Z, Backend: c.sd.Backend().Clone(),
		WindowRounds: c.cfg.WindowRounds, BudgetCycles: c.cfg.BudgetCycles,
		BufferRounds: c.cfg.BufferRounds, Policy: c.cfg.Policy,
	})
	if err != nil {
		//xqlint:ignore nopanic the source cell validated this exact config; a failure here is a programming error
		panic(err)
	}
	n.sd = sd
	n.events = decoder.NewSyndromeBitmap(c.code)
	n.prev = make([]uint8, len(c.zOff))
	n.fn = n.decodeColumns
	return &n
}

// decodeColumns scores one 64-lane record block. A lane is replayed
// through the stream decoder only when some round's Z-flip column or the
// logical readout lights up; all-quiet lanes are guaranteed passes whose
// streamed windows would all decode empty at zero cycles.
func (c *StreamMemoryCell) decodeColumns(_, lanes int, cols []uint64) {
	laneMask := ^uint64(0)
	if lanes < 64 {
		laneMask = uint64(1)<<uint(lanes) - 1
	}
	var parity uint64
	for _, mi := range c.logicalMis {
		parity ^= cols[mi] ^ c.refMask[mi]
	}
	parity &= laneMask
	any := parity
	for r := 0; r < c.cfg.Rounds; r++ {
		base := r * c.roundLen
		for _, off := range c.zOff {
			mi := base + off
			any |= (cols[mi] ^ c.refMask[mi]) & laneMask
		}
	}
	for m := any; m != 0; m &= m - 1 {
		j := uint(bits.TrailingZeros64(m))
		c.sd.Reset()
		for k := range c.prev {
			c.prev[k] = 0
		}
		for r := 0; r < c.cfg.Rounds; r++ {
			base := r * c.roundLen
			c.events.Reset()
			hot := false
			for k, off := range c.zOff {
				mi := base + off
				flip := uint8((cols[mi] ^ c.refMask[mi]) >> j & 1)
				if flip != c.prev[k] {
					c.events.Set(c.zAnc[k])
					hot = true
				}
				c.prev[k] = flip
			}
			// The physical stream always advances; a dropped round just
			// never delivers its events to the decoder.
			if hot {
				c.sd.Round(c.events)
			} else {
				c.sd.Round(nil)
			}
		}
		res := c.sd.Finish()
		corr := false
		for _, q := range res.Flips {
			if q.Col == 0 {
				corr = !corr
			}
		}
		if (parity>>j&1 == 1) != corr {
			c.fails++
		}
		c.addStats(c.sd.Stats())
	}
}

// addStats folds one shot's stream accounting into the cell totals.
func (c *StreamMemoryCell) addStats(st decoder.StreamStats) {
	c.stats.Rounds += st.Rounds
	c.stats.Windows += st.Windows
	c.stats.DecodeCycles += st.DecodeCycles
	if st.MaxWindowCycles > c.stats.MaxWindowCycles {
		c.stats.MaxWindowCycles = st.MaxWindowCycles
	}
	c.stats.OverBudgetWindows += st.OverBudgetWindows
	if st.PeakBacklog > c.stats.PeakBacklog {
		c.stats.PeakBacklog = st.PeakBacklog
	}
	c.stats.DroppedRounds += st.DroppedRounds
	c.stats.BackpressureRounds += st.BackpressureRounds
}

// failsIn streams shots [start, start+n) and returns the failure count.
func (c *StreamMemoryCell) failsIn(start, n int) int {
	c.fails = 0
	c.bs.Seek(start)
	c.bs.SampleColumns(n, c.fn)
	return c.fails
}

// Run streams the first `shots` shots and returns the result. Repeated
// calls rewind the sampler and return the identical result.
func (c *StreamMemoryCell) Run(ctx context.Context, shots int) (StreamMemoryResult, error) {
	if shots <= 0 {
		return StreamMemoryResult{}, nil
	}
	if err := ctx.Err(); err != nil {
		return StreamMemoryResult{}, err
	}
	c.stats = decoder.StreamStats{}
	fails := c.failsIn(0, shots)
	return StreamMemoryResult{
		Rate:  float64(fails) / float64(shots),
		Shots: shots,
		Fails: fails,
		Stats: c.stats,
	}, nil
}

// StreamLogicalErrorRate measures the logical Z-memory error rate of a
// distance-d patch with the syndrome stream replayed in real time through
// a windowed decode backend. With BudgetCycles 0 (no latency pressure) it
// reproduces FrameLogicalErrorRate bit-for-bit (pinned by
// TestStreamMemoryMatchesFrame); with a finite budget, windows that
// overrun queue rounds in the syndrome buffer and the overflow policy
// turns the backlog into dropped rounds (degrading Rate) or backpressure.
// Shot k of seed s is fixed by the frame sampler's determinism contract,
// so the counts are identical under any worker scheduling.
func StreamLogicalErrorRate(ctx context.Context, cfg StreamMemoryConfig, shots int, seed int64) (StreamMemoryResult, error) {
	base, err := NewStreamMemoryCell(cfg, seed)
	if err != nil {
		return StreamMemoryResult{}, fmt.Errorf("core: stream logical error rate: %w", err)
	}
	if shots <= 0 {
		return StreamMemoryResult{}, nil
	}

	workers := runtime.GOMAXPROCS(0)
	if blocks := (shots + 63) / 64; workers > blocks {
		workers = blocks
	}
	var (
		mu     sync.Mutex
		out    StreamMemoryResult
		ctxErr bool
		next   int
		wg     sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		cell := base
		if w > 0 {
			cell = base.Clone()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			localFails := 0
			cell.stats = decoder.StreamStats{}
			for {
				mu.Lock()
				start := next
				next += 64
				mu.Unlock()
				if start >= shots {
					break
				}
				if ctx.Err() != nil {
					mu.Lock()
					ctxErr = true
					mu.Unlock()
					break
				}
				n := shots - start
				if n > 64 {
					n = 64
				}
				localFails += cell.failsIn(start, n)
			}
			mu.Lock()
			out.Fails += localFails
			cellStats := cell.stats
			st := &out.Stats
			st.Rounds += cellStats.Rounds
			st.Windows += cellStats.Windows
			st.DecodeCycles += cellStats.DecodeCycles
			if cellStats.MaxWindowCycles > st.MaxWindowCycles {
				st.MaxWindowCycles = cellStats.MaxWindowCycles
			}
			st.OverBudgetWindows += cellStats.OverBudgetWindows
			if cellStats.PeakBacklog > st.PeakBacklog {
				st.PeakBacklog = cellStats.PeakBacklog
			}
			st.DroppedRounds += cellStats.DroppedRounds
			st.BackpressureRounds += cellStats.BackpressureRounds
			mu.Unlock()
		}()
	}
	wg.Wait()
	if ctxErr {
		return StreamMemoryResult{}, ctx.Err()
	}
	out.Shots = shots
	out.Rate = float64(out.Fails) / float64(shots)
	return out, nil
}
