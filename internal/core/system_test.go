package core

import (
	"testing"

	"xqsim/internal/config"
	"xqsim/internal/decoder"
	"xqsim/internal/microarch"
)

// within checks x against the paper's anchor with a relative tolerance.
func within(t *testing.T, name string, got, paper, tol float64) {
	t.Helper()
	lo, hi := paper*(1-tol), paper*(1+tol)
	if float64(got) < lo || float64(got) > hi {
		t.Errorf("%s = %.0f, paper %.0f (tolerance %.0f%%)", name, got, paper, tol*100)
	}
}

var (
	ratesRR  Rates
	ratesPr  Rates
	ratesPS  Rates
	ratesSet bool
)

func rates(t *testing.T) (Rates, Rates, Rates) {
	t.Helper()
	if !ratesSet {
		d := config.CodeDistance
		ratesRR = MeasureRates(d, config.PhysErrorRate, decoder.SchemeRoundRobin, 1)
		ratesPr = MeasureRates(d, config.PhysErrorRate, decoder.SchemePriority, 1)
		ratesPS = MeasureRates(d, config.PhysErrorRate, decoder.SchemePatchSliding, 1)
		ratesSet = true
	}
	return ratesRR, ratesPr, ratesPS
}

func TestMeasuredRates(t *testing.T) {
	_, r, _ := rates(t)
	// Codeword stream: 26 bits x 8 steps per round for every qubit.
	if r.BitsPerQubitPerRound < 208 || r.BitsPerQubitPerRound > 215 {
		t.Errorf("bits/qubit/round = %.1f", r.BitsPerQubitPerRound)
	}
	if r.SyndromesPerQubitPerWindow <= 0 || r.SyndromesPerQubitPerWindow > 0.1 {
		t.Errorf("syndrome density = %v", r.SyndromesPerQubitPerWindow)
	}
	if r.MatchesPerSyndrome <= 0.4 || r.MatchesPerSyndrome > 1.01 {
		t.Errorf("matches/syndrome = %v", r.MatchesPerSyndrome)
	}
}

func TestCurrentSystemLimits(t *testing.T) {
	// Fig. 14: baseline decode limit ~250, transfer limit ~1,700, and
	// Optimization #1 extends decoding to ~9,800 (>7x improvement).
	rRR, rPr, _ := rates(t)
	d := config.CodeDistance
	decodeOK := func(r Report) bool { return r.DecodeOK }
	transferOK := func(r Report) bool { return r.TransferOK && r.BWOK }

	cur := CurrentSystem(d, false)
	within(t, "current decode limit", float64(cur.ConstraintLimit(rRR, decodeOK)), 250, 0.35)
	within(t, "current transfer limit", float64(cur.ConstraintLimit(rRR, transferOK)), 1700, 0.15)

	opt := CurrentSystem(d, true)
	dec := opt.ConstraintLimit(rPr, decodeOK)
	within(t, "opt1 decode limit", float64(dec), 9800, 0.30)
	if float64(dec)/250 < 7 {
		t.Errorf("Optimization #1 improvement %.1fx, paper reports >7x", float64(dec)/250)
	}
	// Overall limited by the 300K-4K transfer.
	within(t, "current+opt1 overall", float64(opt.MaxQubits(rPr)), 1700, 0.15)
}

func TestNearFutureLimits(t *testing.T) {
	// Fig. 17: RSFQ 970 -> 4,600 with Opts #2/#3; 4K CMOS 1,400 -> 9,800
	// (decode-capped) with voltage scaling.
	_, rPr, _ := rates(t)
	d := config.CodeDistance
	powerOK := func(r Report) bool { return r.PowerOK }

	within(t, "nf-RSFQ base", float64(NearFutureRSFQ(d, false).ConstraintLimit(rPr, powerOK)), 970, 0.15)
	within(t, "nf-RSFQ opt", float64(NearFutureRSFQ(d, true).ConstraintLimit(rPr, powerOK)), 4600, 0.25)
	within(t, "nf-4KCMOS base", float64(NearFutureCMOS4K(d, false).ConstraintLimit(rPr, powerOK)), 1400, 0.15)
	within(t, "nf-4KCMOS vs overall", float64(NearFutureCMOS4K(d, true).MaxQubits(rPr)), 9800, 0.30)
}

func TestFutureLimits(t *testing.T) {
	// Fig. 19: ERSFQ power limit ~102,000; moving the EDU to 4 K drops the
	// power limit to ~8,100 while decoding reaches ~105,000; patch-sliding
	// recovers the final ~59,000-qubit design.
	_, rPr, rPS := rates(t)
	d := config.CodeDistance
	powerOK := func(r Report) bool { return r.PowerOK }
	decodeOK := func(r Report) bool { return r.DecodeOK }

	within(t, "future power", float64(FutureSystem(d, false, false).ConstraintLimit(rPr, powerOK)), 102000, 0.15)
	fe := FutureSystem(d, true, false)
	within(t, "future+EDU4K power", float64(fe.ConstraintLimit(rPr, powerOK)), 8100, 0.15)
	within(t, "future+EDU4K decode", float64(fe.ConstraintLimit(rPr, decodeOK)), 105000, 0.20)
	final := FutureSystem(d, true, true)
	within(t, "final 59K design", float64(final.MaxQubits(rPS)), 59000, 0.15)
	// The final design must also fit the 4 K area budget.
	rep := final.Evaluate(final.MaxQubits(rPS), rPS)
	if !rep.AreaOK {
		t.Errorf("final design violates the area budget: %.1f cm^2", rep.Area4KCm2)
	}
}

func TestReportViolations(t *testing.T) {
	_, rPr, _ := rates(t)
	cur := CurrentSystem(config.CodeDistance, true)
	rep := cur.Evaluate(1_000_000, rPr)
	if rep.OK() {
		t.Fatal("a megaqubit current system should violate constraints")
	}
	if len(rep.Violations()) == 0 {
		t.Fatal("violations missing")
	}
	ok := cur.Evaluate(500, rPr)
	if !ok.OK() || len(ok.Violations()) != 0 {
		t.Fatalf("500 qubits should be fine: %v", ok)
	}
	if ok.String() == "" {
		t.Error("report string empty")
	}
}

func TestSuccessRateCollapse(t *testing.T) {
	// Fig. 5 shape: success stays high below the constraint point and
	// collapses beyond it.
	_, rPr, _ := rates(t)
	cur := CurrentSystem(7, true) // d=7 toy workload as in Section 2.3
	low := cur.SuccessRate(500, 300, rPr)
	high := cur.SuccessRate(20000, 300, rPr)
	if low < 0.5 {
		t.Errorf("success at 500 qubits = %v, want high", low)
	}
	if high > 0.1 {
		t.Errorf("success at 20000 qubits = %v, want collapsed", high)
	}
	if high >= low {
		t.Error("success must decrease past the violation point")
	}
}

func TestTemperatureAssignments(t *testing.T) {
	d := config.CodeDistance
	cur := CurrentSystem(d, false)
	if cur.TempOf(microarch.UnitPSU) != T300K || cur.TempOf(microarch.UnitQCI) != T4K {
		t.Error("current system temperatures wrong")
	}
	nf := NearFutureRSFQ(d, false)
	if nf.TempOf(microarch.UnitPSU) != T4K || nf.TempOf(microarch.UnitEDU) != T300K {
		t.Error("near-future system temperatures wrong")
	}
	fut := FutureSystem(d, true, true)
	if fut.TempOf(microarch.UnitEDU) != T4K {
		t.Error("future system EDU should be at 4K")
	}
	if T4K.String() != "4K" || T300K.String() != "300K" {
		t.Error("temperature names")
	}
}

func TestGuideline1TransferElimination(t *testing.T) {
	// Moving PSU/TCU to 4 K must eliminate the dominant codeword stream
	// from the 300K-4K boundary.
	_, rPr, _ := rates(t)
	d := config.CodeDistance
	cur := CurrentSystem(d, true)
	nf := NearFutureRSFQ(d, false)
	n := 5000
	curRep := cur.Evaluate(n, rPr)
	nfRep := nf.Evaluate(n, rPr)
	if nfRep.CrossTransferGbps > 0.05*curRep.CrossTransferGbps {
		t.Errorf("guideline #1 did not eliminate cross traffic: %v vs %v",
			nfRep.CrossTransferGbps, curRep.CrossTransferGbps)
	}
}
