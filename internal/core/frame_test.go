package core_test

import (
	"context"
	"testing"

	"xqsim/internal/core"
)

func TestFrameLogicalErrorRateValidation(t *testing.T) {
	ctx := context.Background()
	for _, tc := range []struct{ d, rounds int }{{2, 3}, {1, 3}, {4, 3}, {3, 0}} {
		if _, err := core.FrameLogicalErrorRate(ctx, tc.d, 0.01, tc.rounds, 64, 1); err == nil {
			t.Errorf("d=%d rounds=%d: expected an error", tc.d, tc.rounds)
		}
	}
	rate, err := core.FrameLogicalErrorRate(ctx, 3, 0.01, 3, 0, 1)
	if err != nil || rate != 0 {
		t.Fatalf("zero shots: rate=%v err=%v, want 0, nil", rate, err)
	}
}

func TestFrameLogicalErrorRateCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := core.FrameLogicalErrorRate(ctx, 3, 0.01, 3, 10_000, 1); err == nil {
		t.Fatal("expected a context error")
	}
}

// TestFrameLogicalErrorRateDeterministic: the rate is a pure count of
// failing shot indices under the frame sampler's determinism contract,
// so it must not depend on worker scheduling (or anything else).
func TestFrameLogicalErrorRateDeterministic(t *testing.T) {
	ctx := context.Background()
	first, err := core.FrameLogicalErrorRate(ctx, 3, 0.02, 3, 1_000, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		again, err := core.FrameLogicalErrorRate(ctx, 3, 0.02, 3, 1_000, 7)
		if err != nil {
			t.Fatal(err)
		}
		//xqlint:ignore floateq both are fail-counts divided by the same shot total
		if again != first {
			t.Fatalf("run %d: rate %v != first run %v", i, again, first)
		}
	}
}

// TestFrameLogicalErrorRatePhysical: sanity on the physics — the rate
// grows with p, noise produces failures at high p, and a partial final
// block (shots not a multiple of 64) stays in range.
func TestFrameLogicalErrorRatePhysical(t *testing.T) {
	if testing.Short() {
		t.Skip("samples tens of thousands of memory shots")
	}
	ctx := context.Background()
	lo, err := core.FrameLogicalErrorRate(ctx, 3, 0.001, 3, 20_000, 11)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := core.FrameLogicalErrorRate(ctx, 3, 0.02, 3, 20_000, 11)
	if err != nil {
		t.Fatal(err)
	}
	if lo >= hi {
		t.Errorf("rate not increasing with p: %.4f at p=0.1%%, %.4f at p=2%%", lo, hi)
	}
	if hi < 0.02 || hi > 0.5 {
		t.Errorf("d=3 p=2%% rate %.4f outside the plausible range", hi)
	}
	part, err := core.FrameLogicalErrorRate(ctx, 3, 0.02, 3, 1_037, 11)
	if err != nil {
		t.Fatal(err)
	}
	if part < 0 || part > 1 {
		t.Errorf("partial-block rate %v out of range", part)
	}
}
