package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"xqsim/internal/decoder"
	"xqsim/internal/pauli"
	"xqsim/internal/stab"
	"xqsim/internal/surface"
)

// FrameLogicalErrorRate measures the logical Z-memory error rate of a
// distance-d patch under circuit-level noise by direct batch frame
// sampling: the gate-level memory experiment (surface.MemoryCircuit
// with depolarizing strength p after every two-qubit gate and readout
// flip probability p) is compiled once, shots are drawn 64 per machine
// word through stab.BatchFrameSampler, and each shot's final-round
// Z-plaquette flips feed decoder.SyndromeBitmap directly from the
// record columns — no per-shot []bool is ever materialized. A shot
// fails when the decoder's correction does not cancel the data
// readout's logical-Z flip.
//
// This is the circuit-level counterpart of LogicalErrorRate (which
// drives the microarchitectural backend's phenomenological model).
// Shot k of seed s is fixed by the frame sampler's determinism
// contract, so the rate is a pure count: identical under any worker
// scheduling, and any single shot replays via stab.FrameSampler.
// SampleShot on the same circuit and seed.
func FrameLogicalErrorRate(ctx context.Context, d int, p float64, rounds, shots int, seed int64) (float64, error) {
	if d < 3 || d%2 == 0 {
		return 0, fmt.Errorf("core: frame logical error rate: invalid code distance %d", d)
	}
	if rounds < 1 {
		return 0, fmt.Errorf("core: frame logical error rate: rounds must be >= 1, got %d", rounds)
	}
	if shots <= 0 {
		return 0, nil
	}
	code := surface.NewCode(d)
	circ := code.MemoryCircuit(rounds, p, p)
	base, err := stab.NewBatchFrameSampler(circ, seed)
	if err != nil {
		return 0, fmt.Errorf("core: frame logical error rate: %w", err)
	}

	stabs := code.Stabilizers()
	// Final-round Z-plaquette measurement indices and their plaquette
	// cells: the decode syndrome. (The final ESM round is noise-free,
	// so its flips are the accumulated data-error parities — the same
	// telescoped detection-event sum the window-parity decode uses.)
	finalBase := (rounds - 1) * len(stabs)
	var zMis []int
	var zAnc []surface.Coord
	for i, st := range stabs {
		if st.Basis == pauli.Z {
			zMis = append(zMis, finalBase+i)
			zAnc = append(zAnc, st.Anc)
		}
	}
	// Data-readout measurement indices on the logical-Z support.
	dataBase := rounds * len(stabs)
	var logicalMis []int
	for _, q := range code.LogicalZ() {
		logicalMis = append(logicalMis, dataBase+code.DataIndex(q))
	}
	// Flip masks: flip column = record column XOR reference column.
	refMask := make([]uint64, base.Measurements())
	for i := range refMask {
		if base.RefBit(i) {
			refMask[i] = ^uint64(0)
		}
	}

	workers := runtime.GOMAXPROCS(0)
	if blocks := (shots + 63) / 64; workers > blocks {
		workers = blocks
	}
	var (
		fails, nextBlock atomic.Int64
		ctxErr           atomic.Bool
		wg               sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			bs := base.Clone()
			syn := decoder.NewSyndromeBitmap(code)
			var sc decoder.Scratch
			var res decoder.Result
			localFails := 0
			for {
				b := int(nextBlock.Add(1)) - 1
				start := b * 64
				if start >= shots {
					break
				}
				if ctx.Err() != nil {
					ctxErr.Store(true)
					break
				}
				n := shots - start
				if n > 64 {
					n = 64
				}
				bs.Seek(start)
				bs.SampleColumns(n, func(_, lanes int, cols []uint64) {
					laneMask := ^uint64(0)
					if lanes < 64 {
						laneMask = uint64(1)<<uint(lanes) - 1
					}
					// Logical-Z flip parity of all 64 lanes at once.
					var parity uint64
					for _, mi := range logicalMis {
						parity ^= cols[mi] ^ refMask[mi]
					}
					parity &= laneMask
					any := parity
					for _, mi := range zMis {
						any |= (cols[mi] ^ refMask[mi]) & laneMask
					}
					if any == 0 {
						return // no syndrome, no logical flip: no failures
					}
					for j := 0; j < lanes; j++ {
						syn.Reset()
						hot := 0
						for k, mi := range zMis {
							if (cols[mi]^refMask[mi])>>uint(j)&1 == 1 {
								syn.Set(zAnc[k])
								hot++
							}
						}
						corr := false
						if hot > 0 {
							decoder.DecodePatchInto(code, pauli.Z, syn, &sc, &res)
							for _, q := range res.Flips {
								if q.Col == 0 {
									corr = !corr
								}
							}
						}
						if (parity>>uint(j)&1 == 1) != corr {
							localFails++
						}
					}
				})
			}
			fails.Add(int64(localFails))
		}()
	}
	wg.Wait()
	if ctxErr.Load() {
		return 0, ctx.Err()
	}
	return float64(fails.Load()) / float64(shots), nil
}
