package core

import (
	"context"
	"fmt"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"

	"xqsim/internal/decoder"
	"xqsim/internal/pauli"
	"xqsim/internal/stab"
	"xqsim/internal/surface"
)

// FrameMemoryCell is one compiled circuit-level memory-experiment cell:
// the gate-level memory circuit (surface.MemoryCircuit with depolarizing
// strength p after every two-qubit gate and readout flip probability p)
// compiled once into the bit-sliced batch frame sampler, plus every
// decode index and scratch buffer the shot loop needs. Rate draws shots
// 64 per machine word and decodes only the lanes that light up, so the
// steady-state cell costs zero heap allocations (pinned by
// TestFrameMemoryCellSteadyStateAllocs).
//
// A cell is single-goroutine; Clone gives each worker its own sampler
// position and scratch over the shared compiled op-stream.
type FrameMemoryCell struct {
	code surface.Code
	bs   *stab.BatchFrameSampler

	// zMis/zAnc are the final-round Z-plaquette measurement indices and
	// their plaquette cells — the decode syndrome. (The final ESM round
	// is noise-free, so its flips are the accumulated data-error
	// parities, the same telescoped detection-event sum the
	// window-parity decode uses.)
	zMis []int           //xqlint:shared immutable decode indices built at construction
	zAnc []surface.Coord //xqlint:shared immutable decode indices built at construction
	// logicalMis are the data-readout measurement indices on the
	// logical-Z support.
	logicalMis []int //xqlint:shared immutable decode indices built at construction
	// refMask broadcasts each reference bit across all 64 lanes, so
	// flip column = record column XOR refMask.
	refMask []uint64 //xqlint:shared write-once reference mask shared by every worker

	syn   *decoder.SyndromeBitmap
	sc    decoder.Scratch
	res   decoder.Result
	fails int
	// fn is the column callback bound once at construction, so the hot
	// loop never materializes a new closure.
	fn func(base, lanes int, cols []uint64)
}

// NewFrameMemoryCell compiles the distance-d memory experiment with
// `rounds` syndrome rounds at physical error rate p. Shot k is fixed by
// the frame sampler's determinism contract for the given seed.
func NewFrameMemoryCell(d int, p float64, rounds int, seed int64) (*FrameMemoryCell, error) {
	if d < 3 || d%2 == 0 {
		return nil, fmt.Errorf("core: frame memory cell: invalid code distance %d", d)
	}
	if rounds < 1 {
		return nil, fmt.Errorf("core: frame memory cell: rounds must be >= 1, got %d", rounds)
	}
	code := surface.NewCode(d)
	circ := code.MemoryCircuit(rounds, p, p)
	bs, err := stab.NewBatchFrameSampler(circ, seed)
	if err != nil {
		return nil, fmt.Errorf("core: frame memory cell: %w", err)
	}
	c := &FrameMemoryCell{code: code, bs: bs, syn: decoder.NewSyndromeBitmap(code)}
	stabs := code.Stabilizers()
	finalBase := (rounds - 1) * len(stabs)
	for i, st := range stabs {
		if st.Basis == pauli.Z {
			c.zMis = append(c.zMis, finalBase+i)
			c.zAnc = append(c.zAnc, st.Anc)
		}
	}
	dataBase := rounds * len(stabs)
	for _, q := range code.LogicalZ() {
		c.logicalMis = append(c.logicalMis, dataBase+code.DataIndex(q))
	}
	c.refMask = make([]uint64, bs.Measurements())
	for i := range c.refMask {
		if bs.RefBit(i) {
			c.refMask[i] = ^uint64(0)
		}
	}
	c.fn = c.decodeColumns
	return c, nil
}

// Clone returns a cell over the same compiled circuit with its own
// sampler position and decode scratch, for concurrent workers.
func (c *FrameMemoryCell) Clone() *FrameMemoryCell {
	n := *c
	n.bs = c.bs.Clone()
	n.syn = decoder.NewSyndromeBitmap(c.code)
	n.sc = decoder.Scratch{}
	n.res = decoder.Result{}
	n.fn = n.decodeColumns
	return &n
}

// decodeColumns scores one 64-lane record block: a lane fails when the
// decoder's correction does not cancel the data readout's logical-Z
// flip. Only lanes with a detection event or a logical flip can fail, so
// the loop word-skips straight to them; everything else is a guaranteed
// pass — at sub-threshold error rates most blocks cost three XOR sweeps
// and no decode at all.
func (c *FrameMemoryCell) decodeColumns(_, lanes int, cols []uint64) {
	laneMask := ^uint64(0)
	if lanes < 64 {
		laneMask = uint64(1)<<uint(lanes) - 1
	}
	// Logical-Z flip parity of all 64 lanes at once.
	var parity uint64
	for _, mi := range c.logicalMis {
		parity ^= cols[mi] ^ c.refMask[mi]
	}
	parity &= laneMask
	any := parity
	for _, mi := range c.zMis {
		any |= (cols[mi] ^ c.refMask[mi]) & laneMask
	}
	for m := any; m != 0; m &= m - 1 {
		j := uint(bits.TrailingZeros64(m))
		c.syn.Reset()
		hot := 0
		for k, mi := range c.zMis {
			if (cols[mi]^c.refMask[mi])>>j&1 == 1 {
				c.syn.Set(c.zAnc[k])
				hot++
			}
		}
		corr := false
		if hot > 0 {
			decoder.DecodePatchInto(c.code, pauli.Z, c.syn, &c.sc, &c.res)
			for _, q := range c.res.Flips {
				if q.Col == 0 {
					corr = !corr
				}
			}
		}
		if (parity>>j&1 == 1) != corr {
			c.fails++
		}
	}
}

// failsIn decodes shots [start, start+n) and returns the failure count.
func (c *FrameMemoryCell) failsIn(start, n int) int {
	c.fails = 0
	c.bs.Seek(start)
	c.bs.SampleColumns(n, c.fn)
	return c.fails
}

// Rate samples the first `shots` shots of the cell's stream and returns
// the logical failure fraction. Repeated calls rewind the sampler and
// return the identical rate.
func (c *FrameMemoryCell) Rate(ctx context.Context, shots int) (float64, error) {
	if shots <= 0 {
		return 0, nil
	}
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return float64(c.failsIn(0, shots)) / float64(shots), nil
}

// FrameLogicalErrorRate measures the logical Z-memory error rate of a
// distance-d patch under circuit-level noise by direct batch frame
// sampling through a FrameMemoryCell compiled once and cloned per
// worker — no per-shot []bool is ever materialized.
//
// This is the circuit-level counterpart of LogicalErrorRate (which
// drives the microarchitectural backend's phenomenological model).
// Shot k of seed s is fixed by the frame sampler's determinism
// contract, so the rate is a pure count: identical under any worker
// scheduling, and any single shot replays via stab.FrameSampler.
// SampleShot on the same circuit and seed.
func FrameLogicalErrorRate(ctx context.Context, d int, p float64, rounds, shots int, seed int64) (float64, error) {
	base, err := NewFrameMemoryCell(d, p, rounds, seed)
	if err != nil {
		return 0, fmt.Errorf("core: frame logical error rate: %w", err)
	}
	if shots <= 0 {
		return 0, nil
	}

	workers := runtime.GOMAXPROCS(0)
	if blocks := (shots + 63) / 64; workers > blocks {
		workers = blocks
	}
	var (
		fails, nextBlock atomic.Int64
		ctxErr           atomic.Bool
		wg               sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		cell := base
		if w > 0 {
			cell = base.Clone()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			localFails := 0
			for {
				b := int(nextBlock.Add(1)) - 1
				start := b * 64
				if start >= shots {
					break
				}
				if ctx.Err() != nil {
					ctxErr.Store(true)
					break
				}
				n := shots - start
				if n > 64 {
					n = 64
				}
				localFails += cell.failsIn(start, n)
			}
			fails.Add(int64(localFails))
		}()
	}
	wg.Wait()
	if ctxErr.Load() {
		return 0, ctx.Err()
	}
	return float64(fails.Load()) / float64(shots), nil
}
