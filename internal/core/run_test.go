package core

import (
	"context"
	"testing"

	"xqsim/internal/compiler"
	"xqsim/internal/decoder"
	"xqsim/internal/ftqc"
	"xqsim/internal/microarch"
)

func TestRunShotsDistribution(t *testing.T) {
	// Noiseless PPR(pi/4, Z) on |0>: the state stays |0> up to phase, so
	// the readout must be deterministic 0.
	circ := compiler.SinglePPR("Z", ftqc.AnglePi4)
	dist, m, err := RunShots(context.Background(), circ, 3, 0, 40, 5)
	if err != nil {
		t.Fatal(err)
	}
	if dist[0] < 0.999 {
		t.Fatalf("P(0) = %v, want 1", dist[0])
	}
	if m == nil || m.ESMRounds == 0 {
		t.Fatal("metrics missing")
	}
}

func TestRunShotsCompileError(t *testing.T) {
	bad := compiler.Circuit{NLQ: 0}
	if _, _, err := RunShots(context.Background(), bad, 3, 0, 1, 1); err == nil {
		t.Fatal("expected compile error")
	}
	if _, _, _, err := ValidateCircuit(context.Background(), bad, 3, 0, 1, 1); err == nil {
		t.Fatal("expected validate error")
	}
}

func TestValidateCircuitTableThreeRegime(t *testing.T) {
	// A single-PPR benchmark at d=3, p=0.1% must validate with small dTV
	// (the Table-3 regime).
	circ := compiler.SinglePPR("ZZ", ftqc.AnglePi8)
	dtv, phys, ref, err := ValidateCircuit(context.Background(), circ, 3, 0.001, 300, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(phys) != len(ref) {
		t.Fatal("distribution sizes differ")
	}
	if dtv > 0.12 {
		t.Fatalf("dTV = %v", dtv)
	}
}

func TestRunScalingWorkloadMetrics(t *testing.T) {
	m, err := RunScalingWorkload(7, 0.001, decoder.SchemePriority, 3)
	if err != nil {
		t.Fatal(err)
	}
	if m.ESMRounds == 0 || m.DecodeWindows == 0 {
		t.Fatal("scaling run produced no activity")
	}
	if m.TransferBits[microarch.UnitPSU][microarch.UnitTCU] == 0 {
		t.Fatal("no codeword traffic recorded")
	}
}

func TestPipelineConfigDefaults(t *testing.T) {
	cfg := PipelineConfig(15, 0.001, decoder.SchemePriority, true, 9)
	if cfg.D != 15 || !cfg.Functional || cfg.CwdBits != 26 || cfg.StepsPerRound != 8 {
		t.Fatalf("config = %+v", cfg)
	}
	if cfg.T1QNs != 14 || cfg.T2QNs != 26 || cfg.TMeasNs != 600 {
		t.Fatal("gate latencies drifted")
	}
}

func TestFreqOfAllTechs(t *testing.T) {
	d := 15
	if f := NearFutureRSFQ(d, false).freqOf(microarch.UnitPSU); f != 21.0 {
		t.Errorf("RSFQ freq = %v", f)
	}
	if f := FutureSystem(d, true, false).freqOf(microarch.UnitEDU); f != 21.0 {
		t.Errorf("ERSFQ freq = %v", f)
	}
	if f := NearFutureCMOS4K(d, false).freqOf(microarch.UnitPSU); f != 1.5 {
		t.Errorf("4K CMOS freq = %v", f)
	}
	if f := CurrentSystem(d, false).freqOf(microarch.UnitEDU); f != 1.5 {
		t.Errorf("300K CMOS freq = %v", f)
	}
}

func TestBudgetOverride(t *testing.T) {
	_, r, _ := rates(t)
	base := FutureSystem(15, true, true)
	nBase := base.MaxQubits(r)

	richer := FutureSystem(15, true, true)
	b := DefaultBudget()
	b.Power4KW = 3.0
	richer.Budget = b
	nRich := richer.MaxQubits(r)
	if nRich <= nBase {
		t.Fatalf("doubled power budget did not help: %d vs %d", nRich, nBase)
	}

	// A tighter decode budget must shrink a decode-limited system.
	slow := CurrentSystem(15, true)
	tight := CurrentSystem(15, true)
	tb := DefaultBudget()
	tb.DecodeBudgetNs = 200
	tight.Budget = tb
	decodeOK := func(rep Report) bool { return rep.DecodeOK }
	if tight.ConstraintLimit(r, decodeOK) >= slow.ConstraintLimit(r, decodeOK) {
		t.Fatal("tighter decode budget did not bite")
	}
	// A doubled power budget also doubles the admissible cable count.
	if b.MaxCrossGbps() <= DefaultBudget().MaxCrossGbps() {
		t.Fatal("cable budget did not grow with the power budget")
	}
}

func TestRunShotsDeterministicAcrossScheduling(t *testing.T) {
	// Per-shot seeds are fixed, so the distribution is identical across
	// runs despite parallel scheduling.
	circ := compiler.SinglePPR("XZ", ftqc.AnglePi4)
	a, _, err := RunShots(context.Background(), circ, 3, 0.002, 64, 13)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := RunShots(context.Background(), circ, 3, 0.002, 64, 13)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("distribution differs at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestMSDSelfCheckThroughFullPipeline(t *testing.T) {
	// The 15-to-1 distillation self-check through the complete stack
	// (QISA, microarchitecture, noisy surface-code backend): under the
	// stabilizer substitution both sides of the comparison shift
	// consistently, so the sampled distribution must match the
	// substituted reference.
	circ := compiler.MSD15To1SelfCheck()
	// Noiseless first: the datapath must match the substituted reference
	// exactly (up to sampling).
	dtv0, _, _, err := ValidateCircuit(context.Background(), circ, 3, 0, 150, 21)
	if err != nil {
		t.Fatal(err)
	}
	if dtv0 > 0.12 {
		t.Fatalf("noiseless MSD self-check dTV = %v", dtv0)
	}
	// With noise at d=3 this 31-rotation workload accumulates real
	// logical errors (~93 decode windows over ~8 active patches); the
	// distribution must still stay recognizably close.
	dtv, _, _, err := ValidateCircuit(context.Background(), circ, 3, 0.001, 150, 21)
	if err != nil {
		t.Fatal(err)
	}
	if dtv > 0.45 {
		t.Fatalf("noisy MSD self-check dTV = %v", dtv)
	}
}

func TestRatesScaleInvariance(t *testing.T) {
	// The engine extrapolates macroscopic metrics from rates measured at a
	// reference scale; that is only sound if the per-qubit rates are
	// scale-invariant. Measure at two workload sizes and compare.
	a := measureRatesN(7, 0.001, decoder.SchemePriority, 3, 3, 4)
	b := measureRatesN(7, 0.001, decoder.SchemePriority, 3, 6, 4)
	rel := func(x, y float64) float64 {
		if y == 0 {
			return 0
		}
		d := (x - y) / y
		if d < 0 {
			return -d
		}
		return d
	}
	if rel(a.BitsPerQubitPerRound, b.BitsPerQubitPerRound) > 0.02 {
		t.Fatalf("codeword density not scale-invariant: %v vs %v",
			a.BitsPerQubitPerRound, b.BitsPerQubitPerRound)
	}
	if rel(a.SyndromesPerQubitPerWindow, b.SyndromesPerQubitPerWindow) > 0.5 {
		t.Fatalf("syndrome density drifts with scale: %v vs %v",
			a.SyndromesPerQubitPerWindow, b.SyndromesPerQubitPerWindow)
	}
	if rel(a.AvgMatchSteps, b.AvgMatchSteps) > 0.6 {
		t.Fatalf("match distance drifts with scale: %v vs %v", a.AvgMatchSteps, b.AvgMatchSteps)
	}
}
