package core

import (
	"context"
	"testing"

	"xqsim/internal/compiler"
	"xqsim/internal/faults"
	"xqsim/internal/ftqc"
)

// TestShotRunnerMatchesRunOneShot pins the shot-reuse determinism
// contract at the core layer: a ShotRunner replaying shots through one
// reused pipeline must reproduce the fresh-pipeline interpreted path
// bit-for-bit — same readout keys, same metrics, same fault totals —
// including when shots are replayed out of order, so no state can leak
// from one shot into the next.
func TestShotRunnerMatchesRunOneShot(t *testing.T) {
	circ := compiler.SinglePPR("ZZ", ftqc.AnglePi8).SubstituteStabilizer()
	opts := RunOptions{Faults: testFaults()}
	res, err := compileCircuit(circ)
	if err != nil {
		t.Fatal(err)
	}
	runner, err := NewShotRunner(circ, 3, 0.002, 17, opts)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	// Deliberately non-monotonic shot order: reuse must not care.
	for _, s := range []int{0, 3, 1, 3, 7, 2} {
		wantM, wantKey, err := runOneShot(ctx, res, circ.NLQ, 3, 0.002, 17, s, opts)
		if err != nil {
			t.Fatal(err)
		}
		gotM, gotKey, err := runner.RunShot(ctx, s)
		if err != nil {
			t.Fatal(err)
		}
		if gotKey != wantKey {
			t.Fatalf("shot %d: key %d, fresh pipeline got %d", s, gotKey, wantKey)
		}
		if *gotM != *wantM {
			t.Fatalf("shot %d: reused-pipeline metrics diverge from fresh:\n%+v\nvs\n%+v", s, *gotM, *wantM)
		}
	}
}

// TestShotRunnerSteadyStateAllocs pins the tentpole: after warmup, a
// noisy, fault-injected shot through the reusable runner performs zero
// heap allocations.
func TestShotRunnerSteadyStateAllocs(t *testing.T) {
	circ := compiler.SinglePPR("ZZZ", ftqc.AnglePi8).SubstituteStabilizer()
	runner, err := NewShotRunner(circ, 3, 0.001, 11, RunOptions{Faults: testFaults()})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	shot := 0
	run := func() {
		if _, _, err := runner.RunShot(ctx, shot); err != nil {
			t.Fatal(err)
		}
		shot++
	}
	for i := 0; i < 8; i++ {
		run() // warm up lazily-grown scratch
	}
	if avg := testing.AllocsPerRun(32, run); avg != 0 {
		t.Fatalf("steady-state shot allocates %.1f times, want 0", avg)
	}
}

// TestMemoryRunnerMatchesFresh pins the threshold-experiment reuse: a
// runner reset per trial must reproduce the fresh-backend memoryTrial
// exactly, across seeds, error-rate retargets, and fault-config swaps.
func TestMemoryRunnerMatchesFresh(t *testing.T) {
	fcfg := faults.Config{StallProb: 1, StallFactor: 4, BufferRounds: 3, Policy: faults.PolicyDropOldest}
	r := NewMemoryRunner(3, 0.01, faults.Config{})
	cells := []struct {
		p    float64
		fcfg faults.Config
	}{
		{0.01, faults.Config{}},
		{0.02, faults.Config{}},
		{0.02, fcfg},
		{0.005, fcfg},
		{0.01, faults.Config{}}, // back to the first environment
	}
	for _, cell := range cells {
		r.SetPhysError(cell.p)
		r.SetFaults(cell.fcfg)
		for s := 0; s < 6; s++ {
			trialSeed := int64(31) + int64(s)*trialSeedStride
			wantFail, wantTot, err := memoryTrial(3, cell.p, 3, trialSeed, cell.fcfg)
			if err != nil {
				t.Fatal(err)
			}
			gotFail, gotTot, err := r.Trial(3, trialSeed)
			if err != nil {
				t.Fatal(err)
			}
			if gotFail != wantFail || gotTot != wantTot {
				t.Fatalf("p=%v faults=%+v seed %d: reused runner (%v, %+v) != fresh (%v, %+v)",
					cell.p, cell.fcfg, trialSeed, gotFail, gotTot, wantFail, wantTot)
			}
		}
	}
}

// TestMemoryRunnerSteadyStateAllocs pins the trial loop at zero heap
// allocations, the basis of the threshold-study allocation reduction.
func TestMemoryRunnerSteadyStateAllocs(t *testing.T) {
	r := NewMemoryRunner(3, 0.01, faults.Config{StallProb: 0.5, StallFactor: 4, BufferRounds: 3, Policy: faults.PolicyDropOldest})
	seed := int64(7)
	run := func() {
		if _, _, err := r.Trial(3, seed); err != nil {
			t.Fatal(err)
		}
		seed += trialSeedStride
	}
	for i := 0; i < 8; i++ {
		run()
	}
	if avg := testing.AllocsPerRun(32, run); avg != 0 {
		t.Fatalf("steady-state memory trial allocates %.1f times, want 0", avg)
	}
}

// TestMemoryExperimentReuseAcrossCells checks that a pool reused across
// a (p, faults) grid reports exactly what independent single-cell calls
// (LogicalErrorRateFaults builds a fresh experiment per call) report.
func TestMemoryExperimentReuseAcrossCells(t *testing.T) {
	ctx := context.Background()
	exp := NewMemoryExperiment(3)
	fcfg := faults.Config{StallProb: 1, StallFactor: 4, BufferRounds: 3, Policy: faults.PolicyDropOldest}
	cells := []struct {
		p    float64
		fcfg faults.Config
	}{
		{0.005, faults.Config{}},
		{0.02, faults.Config{}},
		{0.02, fcfg},
	}
	for _, cell := range cells {
		gotRate, gotTot, err := exp.ErrorRate(ctx, cell.p, 3, 40, 31, cell.fcfg)
		if err != nil {
			t.Fatal(err)
		}
		wantRate, wantTot, err := LogicalErrorRateFaults(ctx, 3, cell.p, 3, 40, 31, cell.fcfg)
		if err != nil {
			t.Fatal(err)
		}
		//xqlint:ignore floateq both are fail-counts divided by the same trial total
		if gotRate != wantRate || gotTot != wantTot {
			t.Fatalf("p=%v: reused experiment (%v, %+v) != fresh (%v, %+v)",
				cell.p, gotRate, gotTot, wantRate, wantTot)
		}
	}
}
