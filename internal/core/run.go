package core

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"xqsim/internal/compiler"
	"xqsim/internal/config"
	"xqsim/internal/decoder"
	"xqsim/internal/estimator"
	"xqsim/internal/faults"
	"xqsim/internal/microarch"
	"xqsim/internal/pauli"
	"xqsim/internal/statevec"
	"xqsim/internal/surface"
)

func workloadCircuit(nLQ, pprs int, seed int64) compiler.Circuit {
	return compiler.RandomPPR(nLQ, pprs, seed).SubstituteStabilizer()
}

func compileCircuit(c compiler.Circuit) (*compiler.Result, error) { return compiler.Compile(c) }

func newLayout(nLQ, d int) *surface.PPRLayout { return surface.NewPPRLayout(nLQ, d) }

// PipelineConfig builds the standard microarchitecture configuration from
// Table 4 constants.
func PipelineConfig(d int, physError float64, scheme decoder.Scheme, functional bool, seed int64) microarch.Config {
	return microarch.Config{
		D:              d,
		PhysError:      physError,
		Seed:           seed,
		Functional:     functional,
		Scheme:         scheme,
		MaskGenerators: config.DefaultMaskGenerators,
		MaskSharing:    1,
		CwdBits:        config.CodewordBits,
		StepsPerRound:  config.ESMStepsPerRound,
		T1QNs:          config.T1QNs,
		T2QNs:          config.T2QNs,
		TMeasNs:        config.TMeasNs,
	}
}

// RunOptions tunes RunShotsOpt beyond the standard happy path.
type RunOptions struct {
	// Faults configures deterministic fault injection in every shot's
	// pipeline (decoder stalls, buffer overflow, link corruption); the
	// zero value injects nothing.
	Faults faults.Config
	// ShotTimeout is the per-shot watchdog: a shot whose pipeline run
	// exceeds it is aborted and reported as an error carrying the shot
	// index and seed. Zero disables the watchdog.
	ShotTimeout time.Duration
}

// shotSeedStride separates per-shot seed streams (a prime, so strides
// never fold onto each other for nearby base seeds).
const shotSeedStride = 104729

// ShotSeed returns the derived seed of one shot, so a failed shot
// reported by RunShots can be replayed in isolation.
func ShotSeed(seed int64, shot int) int64 { return seed + int64(shot)*shotSeedStride }

// shotHook, when non-nil, runs at the start of every shot. It exists so
// tests can inject deliberate panics into worker goroutines.
var shotHook func(shot int)

// runOneShot executes a single shot end to end through the interpreted
// path, building a fresh pipeline — the reference implementation the
// reusable ShotRunner is tested against. A worker panic is converted
// into an error that names the shot and its seed for replay.
func runOneShot(ctx context.Context, res *compiler.Result, nLQ, d int, physError float64, seed int64, s int, opts RunOptions) (m *microarch.Metrics, key int, err error) {
	shotSeed := ShotSeed(seed, s)
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("core: shot %d panicked: %v (replay with seed %d)", s, r, shotSeed)
		}
	}()
	if shotHook != nil {
		shotHook(s)
	}
	cfg := PipelineConfig(d, physError, decoder.SchemePriority, true, shotSeed)
	cfg.Faults = opts.Faults
	pl := microarch.NewPipeline(surface.NewPPRLayout(nLQ, d), cfg)
	runCtx := ctx
	if opts.ShotTimeout > 0 {
		var cancel context.CancelFunc
		runCtx, cancel = context.WithTimeout(ctx, opts.ShotTimeout)
		defer cancel()
	}
	if err := pl.RunCtx(runCtx, res.Program); err != nil {
		return nil, 0, fmt.Errorf("core: shot %d (seed %d): %w", s, shotSeed, err)
	}
	for q, mreg := range res.FinalMreg {
		if pl.M.MregFile.Get(uint16(mreg)) {
			key |= 1 << uint(q)
		}
	}
	return &pl.M, key, nil
}

// ShotRunner executes shots of one circuit through a reusable pipeline.
// The circuit is compiled exactly once — QISA program plus the
// pre-validated micro-op stream — and every RunShot resets the same
// pipeline to the shot's derived seed, so the steady-state shot costs
// zero heap allocations (pinned by TestShotRunnerSteadyStateAllocs).
// The pipeline Reset determinism contract makes each shot bit-identical
// to what a freshly built pipeline would produce, so results do not
// depend on which runner (or how warmed-up a runner) executes a shot.
//
// A runner is single-goroutine; Clone gives each worker its own pipeline
// over the shared compiled artifacts.
type ShotRunner struct {
	res  *compiler.Result           //xqlint:shared compile result is immutable after Compile
	cp   *microarch.CompiledProgram //xqlint:shared compiled op-stream is immutable; workers replay it read-only
	nLQ  int
	seed int64
	opts RunOptions
	pl   *microarch.Pipeline
}

// NewShotRunner validates and compiles circ once and builds the reusable
// pipeline. Shot s of RunShot draws its stream from ShotSeed(seed, s).
func NewShotRunner(circ compiler.Circuit, d int, physError float64, seed int64, opts RunOptions) (*ShotRunner, error) {
	if err := opts.Faults.Validate(); err != nil {
		return nil, err
	}
	res, err := compiler.Compile(circ)
	if err != nil {
		return nil, err
	}
	cp, err := microarch.CompileProgram(res.Program, circ.NLQ, d)
	if err != nil {
		return nil, err
	}
	cfg := PipelineConfig(d, physError, decoder.SchemePriority, true, seed)
	cfg.Faults = opts.Faults
	return &ShotRunner{
		res:  res,
		cp:   cp,
		nLQ:  circ.NLQ,
		seed: seed,
		opts: opts,
		pl:   microarch.NewPipeline(surface.NewPPRLayout(circ.NLQ, d), cfg),
	}, nil
}

// Clone returns a runner over the same compiled program with its own
// pipeline, so shots can run on several workers concurrently.
func (r *ShotRunner) Clone() *ShotRunner {
	c := *r
	c.pl = microarch.NewPipeline(surface.NewPPRLayout(r.nLQ, r.pl.Cfg.D), r.pl.Cfg)
	return &c
}

// RunShot executes shot s: the pipeline is rewound to ShotSeed(seed, s)
// and the compiled stream replayed. The returned metrics point into the
// runner's pipeline and are valid until the next RunShot; callers that
// keep them across shots must copy the value. A panic is recovered into
// an error naming the shot and its replay seed, like RunShots reports.
func (r *ShotRunner) RunShot(ctx context.Context, s int) (m *microarch.Metrics, key int, err error) {
	shotSeed := ShotSeed(r.seed, s)
	defer func() {
		if rec := recover(); rec != nil {
			err = fmt.Errorf("core: shot %d panicked: %v (replay with seed %d)", s, rec, shotSeed)
		}
	}()
	if shotHook != nil {
		shotHook(s)
	}
	r.pl.Reset(shotSeed)
	runCtx := ctx
	if r.opts.ShotTimeout > 0 {
		var cancel context.CancelFunc
		runCtx, cancel = context.WithTimeout(ctx, r.opts.ShotTimeout)
		defer cancel()
	}
	if err := r.pl.RunCompiled(runCtx, r.cp); err != nil {
		return nil, 0, fmt.Errorf("core: shot %d (seed %d): %w", s, shotSeed, err)
	}
	for q, mreg := range r.res.FinalMreg {
		if r.pl.M.MregFile.Get(uint16(mreg)) {
			key |= 1 << uint(q)
		}
	}
	return &r.pl.M, key, nil
}

// RunShots executes a circuit through the full stack (compiler -> QISA ->
// microarchitecture -> noisy surface-code backend) for the given number of
// shots and returns the empirical distribution over final logical
// readouts plus the final shot's metrics. Circuits containing pi/8
// rotations must be passed through SubstituteStabilizer first.
//
// Shots run across GOMAXPROCS workers; per-shot seeds are derived
// deterministically from the base seed, so the distribution is
// reproducible regardless of scheduling. Canceling ctx aborts the run
// between instructions and returns the context's error.
func RunShots(ctx context.Context, circ compiler.Circuit, d int, physError float64, shots int, seed int64) ([]float64, *microarch.Metrics, error) {
	return RunShotsOpt(ctx, circ, d, physError, shots, seed, RunOptions{})
}

// RunShotsOpt is RunShots with fault injection and a per-shot watchdog.
// The returned metrics carry the final shot's accounting, except Faults,
// which is summed across all shots (an integer reduction, so it is
// identical regardless of worker scheduling). A panicking shot is
// recovered and reported as an error naming the shot index and seed.
func RunShotsOpt(ctx context.Context, circ compiler.Circuit, d int, physError float64, shots int, seed int64, opts RunOptions) ([]float64, *microarch.Metrics, error) {
	base, err := NewShotRunner(circ, d, physError, seed, opts)
	if err != nil {
		return nil, nil, err
	}

	workers := runtime.GOMAXPROCS(0)
	if workers > shots {
		workers = shots
	}
	if workers < 1 {
		workers = 1
	}

	counts := make([]float64, 1<<uint(circ.NLQ))
	var (
		mu           sync.Mutex
		last         *microarch.Metrics
		lastShot     = -1
		firstErr     error
		firstErrShot = shots
		faultSum     faults.Totals
	)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		runner := base
		if w > 0 {
			runner = base.Clone()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Per-worker tallies; merged under the mutex once at the end
			// so the hot loop stays contention-free. The metrics buffer is
			// a value copy: RunShot's result lives inside the reused
			// pipeline and is overwritten by the worker's next shot.
			local := make([]float64, len(counts))
			var localFaults faults.Totals
			localLast := -1
			var localM microarch.Metrics
			var localErr error
			localErrShot := shots
			for {
				s := int(next.Add(1)) - 1
				if s >= shots {
					break
				}
				if err := ctx.Err(); err != nil {
					if s < localErrShot {
						localErr, localErrShot = err, s
					}
					break
				}
				m, key, err := runner.RunShot(ctx, s)
				if err != nil {
					if s < localErrShot {
						localErr, localErrShot = err, s
					}
					continue
				}
				local[key]++
				localFaults.Add(m.Faults)
				if s > localLast {
					localLast, localM = s, *m
				}
			}
			mu.Lock()
			defer mu.Unlock()
			for i, c := range local {
				counts[i] += c
			}
			faultSum.Add(localFaults)
			if localLast > lastShot {
				m := localM
				lastShot, last = localLast, &m
			}
			// Deterministic error selection: the lowest-indexed failing
			// shot wins, regardless of which worker saw it first.
			if localErr != nil && localErrShot < firstErrShot {
				firstErr, firstErrShot = localErr, localErrShot
			}
		}()
	}
	wg.Wait()

	if firstErr != nil {
		return nil, nil, firstErr
	}
	for i := range counts {
		counts[i] /= float64(shots)
	}
	if last != nil {
		last.Faults = faultSum
	}
	return counts, last, nil
}

// ValidateCircuit computes the Table-3 total variation distance between
// the noisy physical-level sampling and the exact logical reference for a
// benchmark circuit.
func ValidateCircuit(ctx context.Context, circ compiler.Circuit, d int, physError float64, shots int, seed int64) (dtv float64, phys []float64, ref []float64, err error) {
	if err := circ.Validate(); err != nil {
		return 0, nil, nil, err
	}
	sub := circ.SubstituteStabilizer()
	ref = compiler.ReferenceDistribution(sub)
	phys, _, err = RunShots(ctx, sub, d, physError, shots, seed)
	if err != nil {
		return 0, nil, nil, err
	}
	return statevec.TotalVariation(ref, phys), phys, ref, nil
}

// SuccessRate models the application-level success probability of running
// a workload at a given scale under the system's constraint pressure
// (the paper's Fig. 5 methodology, following Litinski's accounting):
// every active patch accrues a logical error chance per d-round window,
// and violated constraints inflate the effective physical error rate by
// the induced idle time.
//
// windows is the workload's total ESM-window count (e.g. 3 per PPR: init,
// merge, split).
func (s *System) SuccessRate(nPhys, windows int, r Rates) float64 {
	rep := s.Evaluate(nPhys, r)
	b := s.budget()
	stall := 1.0
	if rep.DecodeLatencyNs > b.DecodeBudgetNs {
		stall += rep.DecodeLatencyNs / b.DecodeBudgetNs
	}
	if !rep.BWOK {
		stall += rep.CrossTransferGbps / b.MaxCrossGbps()
	}
	if !rep.TransferOK {
		stall += rep.CrossHeatW / b.Power4KW
	}
	pEff := b.PhysErrorRate * stall
	if pEff > 0.5 {
		pEff = 0.5
	}
	// Standard surface-code logical-error fit per patch per window.
	pl := config.LogicalErrorA * math.Pow(pEff/config.ErrorThreshold, float64(s.D+1)/2)
	if pl > 1 {
		pl = 1
	}
	patches := float64(estimator.ScaleFor(nPhys, s.D).NPatches)
	return math.Exp(-pl * patches * float64(windows))
}

// RunScalingWorkload executes a reference random-PPR workload through the
// pipeline in scaling mode (no tableau) and returns the metrics — the
// traffic and activity breakdowns behind Fig. 16.
func RunScalingWorkload(d int, physError float64, scheme decoder.Scheme, seed int64) (*microarch.Metrics, error) {
	circ := workloadCircuit(4, 6, seed)
	res, err := compiler.Compile(circ)
	if err != nil {
		return nil, fmt.Errorf("core: compile scaling workload: %w", err)
	}
	cfg := PipelineConfig(d, physError, scheme, false, seed)
	pl := microarch.NewPipeline(newLayout(circ.NLQ, d), cfg)
	if err := pl.Run(res.Program); err != nil {
		return nil, fmt.Errorf("core: run scaling workload: %w", err)
	}
	return &pl.M, nil
}

// trialSeedStride separates per-trial seed streams of the memory
// experiment (a prime, like shotSeedStride).
const trialSeedStride = 6151

// memoryTrial runs one threshold-experiment trial: prepare |0_L>, run
// `windows` decode windows with fault injection, and report whether the
// final Z readout flipped. A panic inside the backend is converted into
// an error naming the trial and its seed.
//
// It builds a fresh backend per trial — the reference implementation the
// reusable MemoryRunner is tested against (TestMemoryRunnerMatchesFresh).
func memoryTrial(d int, p float64, windows int, trialSeed int64, fcfg faults.Config) (fail bool, tot faults.Totals, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("core: memory trial panicked: %v (replay with seed %d)", r, trialSeed)
		}
	}()
	layout := surface.NewPPRLayout(1, d)
	b := microarch.NewBackend(layout, p, trialSeed, true)
	inj := faults.NewInjector(fcfg, trialSeed)
	b.PrepareZero(0)
	for w := 0; w < windows; w++ {
		for r := 0; r < d; r++ {
			b.InjectRoundNoise()
			if inj.Round().DropEvents {
				b.DropNextRoundEvents()
			}
			b.MeasureSyndromesRound(r == d-1)
		}
		wd := b.FinishWindow()
		// The injector prices the window at the same decode cost the full
		// pipeline would; under backpressure overflow the data qubits
		// idle (and decohere) for the excess rounds.
		wo := inj.Window(microarch.DecodeWindowCycles(decoder.SchemePriority, d, wd), d)
		for i := 0; i < wo.BackpressureRounds; i++ {
			b.InjectRoundNoise()
		}
	}
	pr := pauli.NewProduct(b.NumLQ())
	pr.Ops[0] = pauli.Z
	return b.MeasureProduct(pr), inj.Totals(), nil
}

// MemoryRunner holds the reusable state of one threshold-experiment
// worker: a single-patch backend, a fault injector, and the readout
// product. Trial rewinds them to the trial's derived seed, and the
// backend Reset contract makes the result bit-identical to a freshly
// built backend's — so trials are independent of which runner executes
// them, and the steady-state trial loop is allocation-free.
type MemoryRunner struct {
	d    int
	b    *microarch.Backend
	inj  *faults.Injector
	fcfg faults.Config
	pr   pauli.Product
}

// NewMemoryRunner builds a runner for a distance-d memory patch at
// physical error rate p under the fault environment fcfg (zero value:
// no injection).
func NewMemoryRunner(d int, p float64, fcfg faults.Config) *MemoryRunner {
	b := microarch.NewBackend(surface.NewPPRLayout(1, d), p, 0, true)
	return &MemoryRunner{
		d:    d,
		b:    b,
		inj:  faults.NewInjector(fcfg, 0),
		fcfg: fcfg,
		pr:   pauli.NewProduct(b.NumLQ()),
	}
}

// SetPhysError retargets the runner to a new physical error rate; sweep
// grids reuse one runner across their error-rate cells.
func (r *MemoryRunner) SetPhysError(p float64) { r.b.SetPhysError(p) }

// SetFaults swaps the fault environment. The injector's schedule is
// reseeded at every trial, so the swap only matters for the config.
func (r *MemoryRunner) SetFaults(fcfg faults.Config) {
	if fcfg == r.fcfg {
		return
	}
	r.fcfg = fcfg
	r.inj = faults.NewInjector(fcfg, 0)
}

// Trial runs one threshold-experiment trial at the given derived seed,
// reproducing memoryTrial's fresh-construction result exactly.
func (r *MemoryRunner) Trial(windows int, trialSeed int64) (fail bool, tot faults.Totals, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = fmt.Errorf("core: memory trial panicked: %v (replay with seed %d)", rec, trialSeed)
		}
	}()
	b := r.b
	b.Reset(trialSeed)
	r.inj.Reset(trialSeed)
	b.PrepareZero(0)
	for w := 0; w < windows; w++ {
		for rd := 0; rd < r.d; rd++ {
			b.InjectRoundNoise()
			if r.inj.Round().DropEvents {
				b.DropNextRoundEvents()
			}
			b.MeasureSyndromesRound(rd == r.d-1)
		}
		wd := b.FinishWindow()
		wo := r.inj.Window(microarch.DecodeWindowCycles(decoder.SchemePriority, r.d, wd), r.d)
		for i := 0; i < wo.BackpressureRounds; i++ {
			b.InjectRoundNoise()
		}
	}
	for q := range r.pr.Ops {
		r.pr.Ops[q] = pauli.I
	}
	r.pr.Phase = 0
	r.pr.Ops[0] = pauli.Z
	return b.MeasureProduct(r.pr), r.inj.Totals(), nil
}

// MemoryExperiment is a reusable worker pool of MemoryRunners for one
// code distance. Grid sweeps hold one experiment per distance and call
// ErrorRate per cell: the backends, tableaus, and layouts are built once
// and retargeted in place (SetPhysError/SetFaults), which is where the
// threshold-study allocation reduction comes from.
type MemoryExperiment struct {
	d       int
	runners []*MemoryRunner
}

// NewMemoryExperiment builds an empty pool for distance d; runners are
// created lazily, one per worker, on the first ErrorRate call.
func NewMemoryExperiment(d int) *MemoryExperiment { return &MemoryExperiment{d: d} }

// ErrorRate measures the logical error rate of one (p, fcfg) cell over
// `trials` trials with per-trial derived seeds, exactly as
// LogicalErrorRateFaults reports it. The experiment must not be used
// from multiple goroutines at once (it parallelizes internally).
func (e *MemoryExperiment) ErrorRate(ctx context.Context, p float64, windows, trials int, seed int64, fcfg faults.Config) (float64, faults.Totals, error) {
	if err := fcfg.Validate(); err != nil {
		return 0, faults.Totals{}, err
	}
	if trials <= 0 {
		return 0, faults.Totals{}, nil
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > trials {
		workers = trials
	}
	for len(e.runners) < workers {
		e.runners = append(e.runners, NewMemoryRunner(e.d, p, fcfg))
	}
	for _, r := range e.runners {
		r.SetPhysError(p)
		r.SetFaults(fcfg)
	}
	var (
		mu          sync.Mutex
		firstErr    error
		firstErrIdx = trials
		faultSum    faults.Totals
		fails, next atomic.Int64
		wg          sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		runner := e.runners[w]
		wg.Add(1)
		go func() {
			defer wg.Done()
			var localFaults faults.Totals
			var localErr error
			localErrIdx := trials
			for {
				t := int(next.Add(1)) - 1
				if t >= trials {
					break
				}
				if err := ctx.Err(); err != nil {
					if t < localErrIdx {
						localErr, localErrIdx = err, t
					}
					break
				}
				fail, tot, err := runner.Trial(windows, seed+int64(t)*trialSeedStride)
				if err != nil {
					if t < localErrIdx {
						localErr, localErrIdx = err, t
					}
					continue
				}
				if fail {
					fails.Add(1)
				}
				localFaults.Add(tot)
			}
			mu.Lock()
			defer mu.Unlock()
			faultSum.Add(localFaults)
			if localErr != nil && localErrIdx < firstErrIdx {
				firstErr, firstErrIdx = localErr, localErrIdx
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return 0, faults.Totals{}, firstErr
	}
	return float64(fails.Load()) / float64(trials), faultSum, nil
}

// LogicalErrorRate measures the per-window logical X-error rate of a
// single-patch quantum memory at distance d and physical error rate p, by
// direct simulation of the backend: prepare |0_L>, run `windows` decode
// windows, and count readout flips. This is the standard threshold
// experiment; internal/sweep.ThresholdStudy sweeps it across distances.
// Trials are independent simulations with per-trial seeds, so they run
// across GOMAXPROCS workers; the returned rate is a pure count and thus
// identical to the serial loop's regardless of scheduling. Canceling ctx
// aborts between trials with the context's error.
func LogicalErrorRate(ctx context.Context, d int, p float64, windows, trials int, seed int64) (float64, error) {
	rate, _, err := LogicalErrorRateFaults(ctx, d, p, windows, trials, seed, faults.Config{})
	return rate, err
}

// LogicalErrorRateFaults is LogicalErrorRate under an injected fault
// environment; it additionally returns the fault totals summed across all
// trials (an integer reduction, so deterministic under any scheduling).
// This is the probe behind the degradation curves: logical error rate
// versus injected decoder-stall or link-corruption rate.
func LogicalErrorRateFaults(ctx context.Context, d int, p float64, windows, trials int, seed int64, fcfg faults.Config) (float64, faults.Totals, error) {
	return NewMemoryExperiment(d).ErrorRate(ctx, p, windows, trials, seed, fcfg)
}
