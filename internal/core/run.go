package core

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"xqsim/internal/compiler"
	"xqsim/internal/config"
	"xqsim/internal/decoder"
	"xqsim/internal/estimator"
	"xqsim/internal/microarch"
	"xqsim/internal/pauli"
	"xqsim/internal/statevec"
	"xqsim/internal/surface"
)

func workloadCircuit(nLQ, pprs int, seed int64) compiler.Circuit {
	return compiler.RandomPPR(nLQ, pprs, seed).SubstituteStabilizer()
}

func compileCircuit(c compiler.Circuit) (*compiler.Result, error) { return compiler.Compile(c) }

func newLayout(nLQ, d int) *surface.PPRLayout { return surface.NewPPRLayout(nLQ, d) }

// PipelineConfig builds the standard microarchitecture configuration from
// Table 4 constants.
func PipelineConfig(d int, physError float64, scheme decoder.Scheme, functional bool, seed int64) microarch.Config {
	return microarch.Config{
		D:              d,
		PhysError:      physError,
		Seed:           seed,
		Functional:     functional,
		Scheme:         scheme,
		MaskGenerators: config.DefaultMaskGenerators,
		MaskSharing:    1,
		CwdBits:        config.CodewordBits,
		StepsPerRound:  config.ESMStepsPerRound,
		T1QNs:          config.T1QNs,
		T2QNs:          config.T2QNs,
		TMeasNs:        config.TMeasNs,
	}
}

// RunShots executes a circuit through the full stack (compiler -> QISA ->
// microarchitecture -> noisy surface-code backend) for the given number of
// shots and returns the empirical distribution over final logical
// readouts plus the final shot's metrics. Circuits containing pi/8
// rotations must be passed through SubstituteStabilizer first.
//
// Shots run across GOMAXPROCS workers; per-shot seeds are derived
// deterministically from the base seed, so the distribution is
// reproducible regardless of scheduling.
func RunShots(circ compiler.Circuit, d int, physError float64, shots int, seed int64) ([]float64, *microarch.Metrics, error) {
	res, err := compiler.Compile(circ)
	if err != nil {
		return nil, nil, err
	}

	workers := runtime.GOMAXPROCS(0)
	if workers > shots {
		workers = shots
	}
	if workers < 1 {
		workers = 1
	}
	type shotResult struct {
		key  int
		m    *microarch.Metrics
		shot int
		err  error
	}
	jobs := make(chan int)
	results := make(chan shotResult, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := range jobs {
				cfg := PipelineConfig(d, physError, decoder.SchemePriority, true, seed+int64(s)*104729)
				pl := microarch.NewPipeline(surface.NewPPRLayout(circ.NLQ, d), cfg)
				if err := pl.Run(res.Program); err != nil {
					results <- shotResult{err: err}
					continue
				}
				key := 0
				for q, mreg := range res.FinalMreg {
					if pl.M.MregFile[uint16(mreg)] {
						key |= 1 << uint(q)
					}
				}
				results <- shotResult{key: key, m: &pl.M, shot: s}
			}
		}()
	}
	go func() {
		for s := 0; s < shots; s++ {
			jobs <- s
		}
		close(jobs)
		wg.Wait()
		close(results)
	}()

	counts := make([]float64, 1<<uint(circ.NLQ))
	var last *microarch.Metrics
	lastShot := -1
	var firstErr error
	for r := range results {
		if r.err != nil {
			if firstErr == nil {
				firstErr = r.err
			}
			continue
		}
		counts[r.key]++
		if r.shot > lastShot {
			lastShot, last = r.shot, r.m
		}
	}
	if firstErr != nil {
		return nil, nil, firstErr
	}
	for i := range counts {
		counts[i] /= float64(shots)
	}
	return counts, last, nil
}

// ValidateCircuit computes the Table-3 total variation distance between
// the noisy physical-level sampling and the exact logical reference for a
// benchmark circuit.
func ValidateCircuit(circ compiler.Circuit, d int, physError float64, shots int, seed int64) (dtv float64, phys []float64, ref []float64, err error) {
	if err := circ.Validate(); err != nil {
		return 0, nil, nil, err
	}
	sub := circ.SubstituteStabilizer()
	ref = compiler.ReferenceDistribution(sub)
	phys, _, err = RunShots(sub, d, physError, shots, seed)
	if err != nil {
		return 0, nil, nil, err
	}
	return statevec.TotalVariation(ref, phys), phys, ref, nil
}

// SuccessRate models the application-level success probability of running
// a workload at a given scale under the system's constraint pressure
// (the paper's Fig. 5 methodology, following Litinski's accounting):
// every active patch accrues a logical error chance per d-round window,
// and violated constraints inflate the effective physical error rate by
// the induced idle time.
//
// windows is the workload's total ESM-window count (e.g. 3 per PPR: init,
// merge, split).
func (s *System) SuccessRate(nPhys, windows int, r Rates) float64 {
	rep := s.Evaluate(nPhys, r)
	b := s.budget()
	stall := 1.0
	if rep.DecodeLatencyNs > b.DecodeBudgetNs {
		stall += rep.DecodeLatencyNs / b.DecodeBudgetNs
	}
	if !rep.BWOK {
		stall += rep.CrossTransferGbps / b.MaxCrossGbps()
	}
	if !rep.TransferOK {
		stall += rep.CrossHeatW / b.Power4KW
	}
	pEff := b.PhysErrorRate * stall
	if pEff > 0.5 {
		pEff = 0.5
	}
	// Standard surface-code logical-error fit per patch per window.
	pl := config.LogicalErrorA * math.Pow(pEff/config.ErrorThreshold, float64(s.D+1)/2)
	if pl > 1 {
		pl = 1
	}
	patches := float64(estimator.ScaleFor(nPhys, s.D).NPatches)
	return math.Exp(-pl * patches * float64(windows))
}

// RunScalingWorkload executes a reference random-PPR workload through the
// pipeline in scaling mode (no tableau) and returns the metrics — the
// traffic and activity breakdowns behind Fig. 16.
func RunScalingWorkload(d int, physError float64, scheme decoder.Scheme, seed int64) (*microarch.Metrics, error) {
	circ := workloadCircuit(4, 6, seed)
	res, err := compiler.Compile(circ)
	if err != nil {
		return nil, fmt.Errorf("core: compile scaling workload: %w", err)
	}
	cfg := PipelineConfig(d, physError, scheme, false, seed)
	pl := microarch.NewPipeline(newLayout(circ.NLQ, d), cfg)
	if err := pl.Run(res.Program); err != nil {
		return nil, fmt.Errorf("core: run scaling workload: %w", err)
	}
	return &pl.M, nil
}

// LogicalErrorRate measures the per-window logical X-error rate of a
// single-patch quantum memory at distance d and physical error rate p, by
// direct simulation of the backend: prepare |0_L>, run `windows` decode
// windows, and count readout flips. This is the standard threshold
// experiment; internal/sweep.ThresholdStudy sweeps it across distances.
// Trials are independent simulations with per-trial seeds, so they run
// across GOMAXPROCS workers; the returned rate is a pure count and thus
// identical to the serial loop's regardless of scheduling.
func LogicalErrorRate(d int, p float64, windows, trials int, seed int64) float64 {
	if trials <= 0 {
		return 0
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > trials {
		workers = trials
	}
	var fails, next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				t := int(next.Add(1)) - 1
				if t >= trials {
					return
				}
				layout := surface.NewPPRLayout(1, d)
				b := microarch.NewBackend(layout, p, seed+int64(t)*6151, true)
				b.PrepareZero(0)
				for w := 0; w < windows; w++ {
					for r := 0; r < d; r++ {
						b.InjectRoundNoise()
						b.MeasureSyndromesRound(r == d-1)
					}
					b.FinishWindow()
				}
				pr := pauli.NewProduct(b.NumLQ())
				pr.Ops[0] = pauli.Z
				if b.MeasureProduct(pr) {
					fails.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	return float64(fails.Load()) / float64(trials)
}
