// Package core implements XQ-simulator's scalability engine (the paper's
// Fig. 7, right half): it combines the cycle-accurate microarchitecture
// simulation with the XQ-estimator's frequency/power/area outputs and the
// refrigeration model, and reports the four scalability metrics —
// instruction bandwidth, error decoding latency, 300K-4K data transfer,
// and 4 K device power — together with the sustainable qubit scale.
//
// The engine first *measures* microscopic steady-state rates (codeword
// bits per qubit per round, syndrome density, match distances) by running
// the full pipeline on a workload at a reference scale, then evaluates
// the macroscopic metrics at arbitrary qubit counts from those measured
// rates and the estimator's scale-dependent unit models.
package core

import (
	"fmt"
	"math"

	"xqsim/internal/config"
	"xqsim/internal/decoder"
	"xqsim/internal/estimator"
	"xqsim/internal/microarch"
	"xqsim/internal/synth"
	"xqsim/internal/tech"
)

// Temperature stage of a unit.
type Temperature int

// Stages.
const (
	T300K Temperature = iota
	T4K
)

// String names the stage.
func (t Temperature) String() string {
	if t == T4K {
		return "4K"
	}
	return "300K"
}

// Budget holds the environment parameters of the analysis (Table 4 by
// default). Section 6.2 of the paper points out that future refrigerators
// and interconnects shift these; overriding them here explores such
// systems without touching the models.
type Budget struct {
	Power4KW       float64
	Area4KCm2      float64
	CableGbps      float64
	CableHeatW     float64
	DecodeBudgetNs float64
	PhysErrorRate  float64
}

// DefaultBudget returns the paper's Table 4 environment.
func DefaultBudget() Budget {
	return Budget{
		Power4KW:       config.Power4KBudgetW,
		Area4KCm2:      config.Area4KBudgetCm2,
		CableGbps:      config.CableGbps,
		CableHeatW:     config.CableHeatW,
		DecodeBudgetNs: config.DecodeBudgetNs(),
		PhysErrorRate:  config.PhysErrorRate,
	}
}

// MaxCrossGbps is the aggregate 300K-4K bandwidth the heat budget admits.
func (b Budget) MaxCrossGbps() float64 {
	return math.Floor(b.Power4KW/b.CableHeatW) * b.CableGbps
}

// System describes one control-processor design point: per-unit
// technology/temperature assignment, microarchitecture options, and the
// EDU token-setup scheme.
type System struct {
	Name   string
	Tech   map[microarch.Unit]tech.Kind
	Scheme decoder.Scheme
	Opts   estimator.Options
	D      int
	// Budget defaults to Table 4 when zero (see DefaultBudget).
	Budget Budget
}

// budget resolves the effective environment.
func (s *System) budget() Budget {
	if s.Budget == (Budget{}) {
		return DefaultBudget()
	}
	return s.Budget
}

// TempOf returns a unit's stage (implied by its technology).
func (s *System) TempOf(u microarch.Unit) Temperature {
	if u == microarch.UnitQCI {
		return T4K
	}
	if k, ok := s.Tech[u]; ok && k.Cryogenic() {
		return T4K
	}
	return T300K
}

// techOf returns a unit's technology (300 K CMOS by default).
func (s *System) techOf(u microarch.Unit) tech.Kind {
	if k, ok := s.Tech[u]; ok {
		return k
	}
	return tech.CMOS300K
}

// freqOf returns the unit's clock frequency per Table 4.
func (s *System) freqOf(u microarch.Unit) float64 {
	switch s.techOf(u) {
	case tech.RSFQ:
		return config.FreqRSFQGHz
	case tech.ERSFQ:
		return config.FreqERSFQGHz
	case tech.CMOS4K:
		return config.Freq4KCMOSGHz
	default:
		return config.Freq300KCMOSGHz
	}
}

// CurrentSystem is the paper's Fig. 13(a): every unit in 300 K CMOS.
// eduAccelerated applies Optimization #1 (the priority-encoder token
// setup).
func CurrentSystem(d int, eduAccelerated bool) *System {
	scheme := decoder.SchemeRoundRobin
	if eduAccelerated {
		scheme = decoder.SchemePriority
	}
	return &System{
		Name:   "current-300K-CMOS",
		Tech:   map[microarch.Unit]tech.Kind{},
		Scheme: scheme,
		Opts:   estimator.DefaultOptions(d),
		D:      d,
	}
}

// NearFutureRSFQ is Fig. 13(b) with RSFQ: PSU and TCU at 4 K (Guideline
// #1), the rest at 300 K; optimized applies Optimizations #2 and #3.
func NearFutureRSFQ(d int, optimized bool) *System {
	s := &System{
		Name: "near-future-RSFQ",
		Tech: map[microarch.Unit]tech.Kind{
			microarch.UnitPSU: tech.RSFQ,
			microarch.UnitTCU: tech.RSFQ,
		},
		Scheme: decoder.SchemePriority,
		Opts:   estimator.DefaultOptions(d),
		D:      d,
	}
	if optimized {
		s.Name += "-opt"
		s.Opts.PSU = synth.OptimizedPSUOptions()
		s.Opts.TCU = synth.TCUOptions{SimpleBuffer: true}
	}
	return s
}

// NearFutureCMOS4K is Fig. 13(b) with cryogenic CMOS; voltageScaled
// applies the power-oriented voltage scaling of Section 5.4.4.
func NearFutureCMOS4K(d int, voltageScaled bool) *System {
	s := &System{
		Name: "near-future-4K-CMOS",
		Tech: map[microarch.Unit]tech.Kind{
			microarch.UnitPSU: tech.CMOS4K,
			microarch.UnitTCU: tech.CMOS4K,
		},
		Scheme: decoder.SchemePriority,
		Opts:   estimator.DefaultOptions(d),
		D:      d,
	}
	if voltageScaled {
		s.Name += "-vs"
		s.Opts.VoltageScaling = true
	}
	return s
}

// FutureSystem is Fig. 13(c): ERSFQ PSU/TCU with Optimizations #2/#3.
// eduAt4K moves the EDU to ERSFQ at 4 K (Guideline #2); patchSliding
// additionally applies Optimization #4.
func FutureSystem(d int, eduAt4K, patchSliding bool) *System {
	s := &System{
		Name: "future-ERSFQ",
		Tech: map[microarch.Unit]tech.Kind{
			microarch.UnitPSU: tech.ERSFQ,
			microarch.UnitTCU: tech.ERSFQ,
		},
		Scheme: decoder.SchemePriority,
		Opts:   estimator.DefaultOptions(d),
		D:      d,
	}
	s.Opts.PSU = synth.OptimizedPSUOptions()
	s.Opts.TCU = synth.TCUOptions{SimpleBuffer: true}
	if eduAt4K {
		s.Name += "+EDU4K"
		s.Tech[microarch.UnitEDU] = tech.ERSFQ
		if patchSliding {
			s.Name += "+ps"
			s.Opts.EDU.PatchSliding = true
			s.Scheme = decoder.SchemePatchSliding
		}
	}
	return s
}

// Rates are the microscopic steady-state rates measured from a pipeline
// run; macroscopic metrics extrapolate from them.
type Rates struct {
	// BitsPerQubitPerRound is the TCU->QCI codeword stream density.
	BitsPerQubitPerRound float64
	// UpBitsPerQubitPerRound is the measurement-result return stream.
	UpBitsPerQubitPerRound float64
	// SyndromesPerQubitPerWindow is the non-trivial syndrome density.
	SyndromesPerQubitPerWindow float64
	// MatchesPerSyndrome and AvgMatchSteps characterize the decode load.
	MatchesPerSyndrome float64
	AvgMatchSteps      float64
	// PIUBitsPerQubitPerWindow etc. cover the small inter-unit flows.
	SmallFlowBitsPerQubitPerRound float64
}

func measureRatesN(d int, physError float64, scheme decoder.Scheme, seed int64, nLQ, pprs int) Rates {
	circ := workloadCircuit(nLQ, pprs, seed)
	res, err := compileCircuit(circ)
	if err != nil {
		//xqlint:ignore nopanic unreachable guard: the internal reference workload always compiles; MeasureRates' dozen call sites have no error path
		panic("core: " + err.Error())
	}
	cfg := microarch.Config{
		D:              d,
		PhysError:      physError,
		Seed:           seed,
		Functional:     false,
		Scheme:         scheme,
		MaskGenerators: config.DefaultMaskGenerators,
		MaskSharing:    1,
		CwdBits:        config.CodewordBits,
		StepsPerRound:  config.ESMStepsPerRound,
		T1QNs:          config.T1QNs,
		T2QNs:          config.T2QNs,
		TMeasNs:        config.TMeasNs,
	}
	pl := microarch.NewPipeline(newLayout(nLQ, d), cfg)
	if err := pl.Run(res.Program); err != nil {
		//xqlint:ignore nopanic unreachable guard: the compiled reference workload always executes; see note above
		panic("core: " + err.Error())
	}
	m := &pl.M

	nPhys := float64(pl.B.Layout.PhysicalQubits())
	rounds := float64(m.ESMRounds)
	windows := float64(m.DecodeWindows)
	r := Rates{}
	if rounds > 0 {
		r.BitsPerQubitPerRound = float64(m.TransferBits[microarch.UnitTCU][microarch.UnitQCI]) / nPhys / rounds
		r.UpBitsPerQubitPerRound = float64(m.TransferBits[microarch.UnitQCI][microarch.UnitEDU]+
			m.TransferBits[microarch.UnitQCI][microarch.UnitLMU]) / nPhys / rounds
		small := m.TransferBits[microarch.UnitQID][microarch.UnitPDU] +
			m.TransferBits[microarch.UnitPDU][microarch.UnitPIU] +
			m.TransferBits[microarch.UnitPIU][microarch.UnitPSU] +
			m.TransferBits[microarch.UnitPIU][microarch.UnitEDU] +
			m.TransferBits[microarch.UnitPIU][microarch.UnitLMU] +
			m.TransferBits[microarch.UnitEDU][microarch.UnitPFU] +
			m.TransferBits[microarch.UnitPFU][microarch.UnitLMU]
		r.SmallFlowBitsPerQubitPerRound = float64(small) / nPhys / rounds
	}
	if windows > 0 {
		r.SyndromesPerQubitPerWindow = float64(m.SyndromesSum) / nPhys / windows
	}
	if m.SyndromesSum > 0 {
		r.MatchesPerSyndrome = float64(m.MatchesSum) / float64(m.SyndromesSum)
	}
	if m.MatchesSum > 0 {
		r.AvgMatchSteps = float64(m.MatchStepsSum) / float64(m.MatchesSum)
	}
	return r
}

// Report carries the four scalability metrics at one qubit scale plus the
// constraint evaluations.
type Report struct {
	NPhys int

	InstBandwidthGbps float64 // required codeword stream bandwidth
	DecodeLatencyNs   float64 // per-window decode latency
	CrossTransferGbps float64 // 300K <-> 4K digital traffic
	CrossHeatW        float64 // cable heat at the 4 K stage
	Power4KW          float64 // 4 K device power
	Area4KCm2         float64 // 4 K device area

	// Constraint satisfaction.
	DecodeOK   bool
	TransferOK bool
	PowerOK    bool
	AreaOK     bool
	BWOK       bool
}

// OK reports whether every constraint holds.
func (r Report) OK() bool {
	return r.DecodeOK && r.TransferOK && r.PowerOK && r.AreaOK && r.BWOK
}

// Violations lists the violated constraints.
func (r Report) Violations() []string {
	var out []string
	if !r.DecodeOK {
		out = append(out, "error-decoding-latency")
	}
	if !r.TransferOK {
		out = append(out, "300K-4K-transfer")
	}
	if !r.PowerOK {
		out = append(out, "4K-power")
	}
	if !r.AreaOK {
		out = append(out, "4K-area")
	}
	if !r.BWOK {
		out = append(out, "instruction-bandwidth")
	}
	return out
}

// Evaluate computes the scalability report of the system at nPhys
// physical qubits using the measured rates.
func (s *System) Evaluate(nPhys int, r Rates) Report {
	rep := Report{NPhys: nPhys}
	roundNs := config.ESMRoundNs()
	scale := estimator.ScaleFor(nPhys, s.D)

	// (1) Instruction bandwidth: the codeword stream all active qubits
	// consume each ESM round.
	rep.InstBandwidthGbps = r.BitsPerQubitPerRound * float64(nPhys) / roundNs

	// (2) Decode latency per window under the system's token scheme
	// (mirrors the pipeline's decodeCycles model).
	tokens := r.SyndromesPerQubitPerWindow * float64(nPhys) * r.MatchesPerSyndrome
	spikePerMatch := 2*r.AvgMatchSteps + float64(microarch.SpikeWaitCycles(s.D)) + 4
	cells := float64(nPhys) / 2
	var cycles float64
	switch s.Scheme {
	case decoder.SchemeRoundRobin:
		// The shared token circulates all cells once per round.
		cycles = float64(s.D)*cells + tokens*spikePerMatch
	case decoder.SchemePriority:
		// Per-basis arrays decode in parallel.
		cycles = (tokens / 2) * (1 + spikePerMatch)
	case decoder.SchemePatchSliding:
		cycles = (tokens/2)*(1+spikePerMatch) + float64(scale.NPatches)
	}
	rep.DecodeLatencyNs = cycles / s.freqOf(microarch.UnitEDU)

	// (3) 300K-4K transfer: flows whose endpoints straddle the boundary.
	gbps := 0.0
	if s.TempOf(microarch.UnitTCU) == T300K {
		gbps += r.BitsPerQubitPerRound * float64(nPhys) / roundNs // codewords down
	}
	if s.TempOf(microarch.UnitEDU) == T300K {
		gbps += r.UpBitsPerQubitPerRound * float64(nPhys) / roundNs // results up
	}
	// PIU(300K) -> PSU(4K) patch info and similar small flows.
	if s.TempOf(microarch.UnitPSU) == T4K && s.TempOf(microarch.UnitPIU) == T300K {
		gbps += r.SmallFlowBitsPerQubitPerRound * float64(nPhys) / roundNs
	}
	b := s.budget()
	rep.CrossTransferGbps = gbps
	cables := math.Ceil(gbps / b.CableGbps)
	rep.CrossHeatW = cables * b.CableHeatW

	// (4) 4 K device power and area from the estimator.
	for u := microarch.UnitQID; u <= microarch.UnitLMU; u++ {
		if s.TempOf(u) != T4K {
			continue
		}
		e := estimator.EstimateUnit(u, scale, s.techOf(u), s.Opts)
		rep.Power4KW += e.TotalW()
		rep.Area4KCm2 += e.AreaCm2
	}

	rep.DecodeOK = rep.DecodeLatencyNs <= b.DecodeBudgetNs
	rep.TransferOK = rep.CrossHeatW <= b.Power4KW
	rep.PowerOK = rep.Power4KW <= b.Power4KW
	rep.AreaOK = rep.Area4KCm2 <= b.Area4KCm2
	rep.BWOK = rep.CrossTransferGbps <= b.MaxCrossGbps() ||
		s.TempOf(microarch.UnitTCU) == T4K
	return rep
}

// MaxQubits finds the largest sustainable physical-qubit count (all
// constraints satisfied) by exponential probing plus binary search.
func (s *System) MaxQubits(r Rates) int {
	if !s.Evaluate(64, r).OK() {
		return 0
	}
	lo, hi := 64, 128
	for s.Evaluate(hi, r).OK() && hi < 1<<27 {
		lo = hi
		hi *= 2
	}
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if s.Evaluate(mid, r).OK() {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// ConstraintLimit finds the scaling limit imposed by a single constraint,
// ignoring the others (the per-line limits of Figs. 14, 17, 19).
func (s *System) ConstraintLimit(r Rates, pass func(Report) bool) int {
	if !pass(s.Evaluate(64, r)) {
		return 0
	}
	lo, hi := 64, 128
	for pass(s.Evaluate(hi, r)) && hi < 1<<27 {
		lo = hi
		hi *= 2
	}
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if pass(s.Evaluate(mid, r)) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// String renders the report compactly.
func (r Report) String() string {
	return fmt.Sprintf(
		"n=%d bw=%.1fGbps decode=%.0fns cross=%.1fGbps(%.2fW) p4k=%.3fW area=%.1fcm2 ok=%v",
		r.NPhys, r.InstBandwidthGbps, r.DecodeLatencyNs, r.CrossTransferGbps,
		r.CrossHeatW, r.Power4KW, r.Area4KCm2, r.OK())
}
