package core

import (
	"context"
	"runtime"
	"sync"
	"testing"

	"xqsim/internal/decoder"
)

// Keys here use otherwise-unused seeds so the miss accounting is not
// perturbed by other tests sharing the process-wide cache.

func TestMeasureRatesMemoized(t *testing.T) {
	const seed = 900001
	before := rateMisses.Load()
	a := MeasureRates(3, 0.001, decoder.SchemePriority, seed)
	b := MeasureRates(3, 0.001, decoder.SchemePriority, seed)
	if got := rateMisses.Load() - before; got != 1 {
		t.Fatalf("two same-key calls ran the pipeline %d times, want 1", got)
	}
	if a != b {
		t.Fatalf("memoized result differs: %+v vs %+v", a, b)
	}
	// A different key must miss.
	MeasureRates(3, 0.001, decoder.SchemeRoundRobin, seed)
	if got := rateMisses.Load() - before; got != 2 {
		t.Fatalf("distinct-key call did not run the pipeline (misses = %d)", got)
	}
}

func TestMeasureRatesUncachedBypasses(t *testing.T) {
	const seed = 900002
	u := MeasureRatesUncached(3, 0.001, decoder.SchemePriority, seed)
	key := rateKey{d: 3, physError: 0.001, scheme: decoder.SchemePriority, seed: seed}
	if _, ok := rateCache.Load(key); ok {
		t.Fatal("MeasureRatesUncached populated the cache")
	}
	if c := MeasureRates(3, 0.001, decoder.SchemePriority, seed); c != u {
		t.Fatalf("uncached result %+v differs from cached %+v", u, c)
	}
}

// TestMeasureRatesConcurrent hammers one fresh key from many goroutines:
// the singleflight cell must run the pipeline exactly once and every
// caller must observe the same settled value. Run with -race.
func TestMeasureRatesConcurrent(t *testing.T) {
	const seed = 900003
	before := rateMisses.Load()
	const callers = 16
	out := make([]Rates, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Mix two distinct keys across the callers.
			scheme := decoder.SchemePriority
			if i%2 == 1 {
				scheme = decoder.SchemePatchSliding
			}
			out[i] = MeasureRates(3, 0.001, scheme, seed)
		}(i)
	}
	wg.Wait()
	if got := rateMisses.Load() - before; got != 2 {
		t.Fatalf("%d concurrent callers over 2 keys ran the pipeline %d times, want 2", callers, got)
	}
	for i := 2; i < callers; i++ {
		if out[i] != out[i%2] {
			t.Fatalf("caller %d observed %+v, want %+v", i, out[i], out[i%2])
		}
	}
}

// fakeRateStore records LoadRates/StoreRates traffic for the durable
// second-level cache tests.
type fakeRateStore struct {
	mu     sync.Mutex
	m      map[string]Rates
	loads  int
	stores int
}

func (f *fakeRateStore) LoadRates(key string) (Rates, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.loads++
	r, ok := f.m[key]
	return r, ok
}

func (f *fakeRateStore) StoreRates(key string, r Rates) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.stores++
	if f.m == nil {
		f.m = map[string]Rates{}
	}
	f.m[key] = r
}

func TestMeasureRatesPersistenceMissThenStore(t *testing.T) {
	const seed = 900005
	fs := &fakeRateStore{}
	EnableRatePersistence(fs)
	defer EnableRatePersistence(nil)

	before := rateMisses.Load()
	r := MeasureRates(3, 0.001, decoder.SchemePriority, seed)
	if got := rateMisses.Load() - before; got != 1 {
		t.Fatalf("cold key with empty store ran the pipeline %d times, want 1", got)
	}
	key := RateCacheKey(3, 0.001, decoder.SchemePriority, seed)
	fs.mu.Lock()
	stored, ok := fs.m[key]
	fs.mu.Unlock()
	if !ok || stored != r {
		t.Fatalf("fresh measurement not persisted under %q (ok=%v)", key, ok)
	}
}

func TestMeasureRatesPersistenceServesWithoutPipeline(t *testing.T) {
	const seed = 900006
	// Pre-populate the durable level with a sentinel: a hit must be
	// served verbatim with no pipeline execution (no miss counted).
	key := RateCacheKey(3, 0.001, decoder.SchemePriority, seed)
	sentinel := Rates{BitsPerQubitPerRound: 123.5}
	fs := &fakeRateStore{m: map[string]Rates{key: sentinel}}
	EnableRatePersistence(fs)
	defer EnableRatePersistence(nil)

	before := rateMisses.Load()
	got := MeasureRates(3, 0.001, decoder.SchemePriority, seed)
	if n := rateMisses.Load() - before; n != 0 {
		t.Fatalf("durable hit still ran the pipeline %d times", n)
	}
	if got != sentinel {
		t.Fatalf("durable hit returned %+v, want the stored sentinel", got)
	}
	if fs.stores != 0 {
		t.Fatalf("durable hit wrote back to the store %d times", fs.stores)
	}
}

// returns exactly the serial loop's answer: per-trial seeds make each
// trial independent of scheduling, and the rate is a pure count.
func TestLogicalErrorRateSchedulingInvariant(t *testing.T) {
	const trials = 40
	par, err := LogicalErrorRate(context.Background(), 3, 0.01, 3, trials, 900004)
	if err != nil {
		t.Fatal(err)
	}
	prev := runtime.GOMAXPROCS(1)
	ser, err := LogicalErrorRate(context.Background(), 3, 0.01, 3, trials, 900004)
	runtime.GOMAXPROCS(prev)
	if err != nil {
		t.Fatal(err)
	}
	if par != ser {
		t.Fatalf("parallel rate %v != serial rate %v", par, ser)
	}
}
