package core

import (
	"context"
	"runtime"
	"sync"
	"testing"

	"xqsim/internal/decoder"
)

// Keys here use otherwise-unused seeds so the miss accounting is not
// perturbed by other tests sharing the process-wide cache.

func TestMeasureRatesMemoized(t *testing.T) {
	const seed = 900001
	before := rateMisses.Load()
	a := MeasureRates(3, 0.001, decoder.SchemePriority, seed)
	b := MeasureRates(3, 0.001, decoder.SchemePriority, seed)
	if got := rateMisses.Load() - before; got != 1 {
		t.Fatalf("two same-key calls ran the pipeline %d times, want 1", got)
	}
	if a != b {
		t.Fatalf("memoized result differs: %+v vs %+v", a, b)
	}
	// A different key must miss.
	MeasureRates(3, 0.001, decoder.SchemeRoundRobin, seed)
	if got := rateMisses.Load() - before; got != 2 {
		t.Fatalf("distinct-key call did not run the pipeline (misses = %d)", got)
	}
}

func TestMeasureRatesUncachedBypasses(t *testing.T) {
	const seed = 900002
	u := MeasureRatesUncached(3, 0.001, decoder.SchemePriority, seed)
	key := rateKey{d: 3, physError: 0.001, scheme: decoder.SchemePriority, seed: seed}
	if _, ok := rateCache.Load(key); ok {
		t.Fatal("MeasureRatesUncached populated the cache")
	}
	if c := MeasureRates(3, 0.001, decoder.SchemePriority, seed); c != u {
		t.Fatalf("uncached result %+v differs from cached %+v", u, c)
	}
}

// TestMeasureRatesConcurrent hammers one fresh key from many goroutines:
// the singleflight cell must run the pipeline exactly once and every
// caller must observe the same settled value. Run with -race.
func TestMeasureRatesConcurrent(t *testing.T) {
	const seed = 900003
	before := rateMisses.Load()
	const callers = 16
	out := make([]Rates, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Mix two distinct keys across the callers.
			scheme := decoder.SchemePriority
			if i%2 == 1 {
				scheme = decoder.SchemePatchSliding
			}
			out[i] = MeasureRates(3, 0.001, scheme, seed)
		}(i)
	}
	wg.Wait()
	if got := rateMisses.Load() - before; got != 2 {
		t.Fatalf("%d concurrent callers over 2 keys ran the pipeline %d times, want 2", callers, got)
	}
	for i := 2; i < callers; i++ {
		if out[i] != out[i%2] {
			t.Fatalf("caller %d observed %+v, want %+v", i, out[i], out[i%2])
		}
	}
}

// TestLogicalErrorRateSchedulingInvariant asserts the parallel trial pool
// returns exactly the serial loop's answer: per-trial seeds make each
// trial independent of scheduling, and the rate is a pure count.
func TestLogicalErrorRateSchedulingInvariant(t *testing.T) {
	const trials = 40
	par, err := LogicalErrorRate(context.Background(), 3, 0.01, 3, trials, 900004)
	if err != nil {
		t.Fatal(err)
	}
	prev := runtime.GOMAXPROCS(1)
	ser, err := LogicalErrorRate(context.Background(), 3, 0.01, 3, trials, 900004)
	runtime.GOMAXPROCS(prev)
	if err != nil {
		t.Fatal(err)
	}
	if par != ser {
		t.Fatalf("parallel rate %v != serial rate %v", par, ser)
	}
}
