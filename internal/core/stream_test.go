package core

import (
	"context"
	"testing"

	"xqsim/internal/decoder"
	"xqsim/internal/faults"
)

func TestStreamMemoryCellValidation(t *testing.T) {
	if _, err := NewStreamMemoryCell(StreamMemoryConfig{D: 4, Rounds: 3}, 1); err == nil {
		t.Fatal("even distance accepted")
	}
	if _, err := NewStreamMemoryCell(StreamMemoryConfig{D: 3, Rounds: 0}, 1); err == nil {
		t.Fatal("zero rounds accepted")
	}
}

// TestStreamMemoryMatchesFrame pins the no-pressure equivalence: with no
// cycle budget the streamed experiment decodes the same accumulated
// syndrome as FrameLogicalErrorRate's whole-shot decode, so the failure
// counts must match bit-for-bit, for both window cadences.
func TestStreamMemoryMatchesFrame(t *testing.T) {
	ctx := context.Background()
	for _, d := range []int{3, 5} {
		const p, rounds, shots = 0.01, 4, 640
		want, err := FrameLogicalErrorRate(ctx, d, p, rounds, shots, 9)
		if err != nil {
			t.Fatal(err)
		}
		for _, win := range []int{0, 1, 2} {
			got, err := StreamLogicalErrorRate(ctx, StreamMemoryConfig{
				D: d, PhysError: p, Rounds: rounds, WindowRounds: win,
			}, shots, 9)
			if err != nil {
				t.Fatal(err)
			}
			if got.Rate != want {
				t.Fatalf("d=%d win=%d: stream rate %v != frame rate %v", d, win, got.Rate, want)
			}
			if got.Stats.DroppedRounds != 0 || got.Stats.OverBudgetWindows != 0 {
				t.Fatalf("d=%d win=%d: pressure with no budget: %+v", d, win, got.Stats)
			}
		}
	}
}

// TestStreamMemoryDeterministicAcrossWorkers pins that the parallel
// reduction is order-independent: repeated runs return identical results.
func TestStreamMemoryDeterministicAcrossWorkers(t *testing.T) {
	ctx := context.Background()
	cfg := StreamMemoryConfig{
		D: 5, PhysError: 0.012, Rounds: 6,
		Backend:      decoder.NewUnionFindBackend(),
		BudgetCycles: 40, BufferRounds: 5, Policy: faults.PolicyDropOldest,
	}
	a, err := StreamLogicalErrorRate(ctx, cfg, 1280, 17)
	if err != nil {
		t.Fatal(err)
	}
	b, err := StreamLogicalErrorRate(ctx, cfg, 1280, 17)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("identically-seeded runs diverged:\n%+v\n%+v", a, b)
	}
}

// TestStreamMemoryOverloadDegradesRate is the backlog->logical-error-rate
// coupling: a decode budget far below the real cost forces buffer
// overflow, and under drop-oldest the lost detection events must raise
// the logical error rate above the unpressured baseline.
func TestStreamMemoryOverloadDegradesRate(t *testing.T) {
	ctx := context.Background()
	const shots = 1920
	base := StreamMemoryConfig{D: 5, PhysError: 0.015, Rounds: 8}
	clean, err := StreamLogicalErrorRate(ctx, base, shots, 23)
	if err != nil {
		t.Fatal(err)
	}
	over := base
	over.BudgetCycles = 1
	over.BufferRounds = 2
	over.Policy = faults.PolicyDropOldest
	degraded, err := StreamLogicalErrorRate(ctx, over, shots, 23)
	if err != nil {
		t.Fatal(err)
	}
	if degraded.Stats.DroppedRounds == 0 || degraded.Stats.OverBudgetWindows == 0 {
		t.Fatalf("overloaded run registered no pressure: %+v", degraded.Stats)
	}
	if degraded.Fails <= clean.Fails {
		t.Fatalf("drop-oldest overload did not degrade: clean %d fails, degraded %d (stats %+v)",
			clean.Fails, degraded.Fails, degraded.Stats)
	}
}

// TestStreamMemoryBackpressureLosesNothing pins the other policy: under
// backpressure no detection events are lost, so the failure count must
// equal the unpressured baseline while the stall rounds are counted.
func TestStreamMemoryBackpressureLosesNothing(t *testing.T) {
	ctx := context.Background()
	const shots = 640
	base := StreamMemoryConfig{D: 3, PhysError: 0.015, Rounds: 6}
	clean, err := StreamLogicalErrorRate(ctx, base, shots, 29)
	if err != nil {
		t.Fatal(err)
	}
	over := base
	over.BudgetCycles = 1
	over.BufferRounds = 2
	over.Policy = faults.PolicyBackpressure
	pressured, err := StreamLogicalErrorRate(ctx, over, shots, 29)
	if err != nil {
		t.Fatal(err)
	}
	if pressured.Fails != clean.Fails {
		t.Fatalf("backpressure changed the verdicts: clean %d fails, pressured %d", clean.Fails, pressured.Fails)
	}
	if pressured.Stats.BackpressureRounds == 0 || pressured.Stats.DroppedRounds != 0 {
		t.Fatalf("backpressure stats = %+v", pressured.Stats)
	}
}

// TestStreamMemoryCellRunRepeats pins that a cell rewinds cleanly: two
// Run calls return identical results.
func TestStreamMemoryCellRunRepeats(t *testing.T) {
	ctx := context.Background()
	cell, err := NewStreamMemoryCell(StreamMemoryConfig{
		D: 3, PhysError: 0.02, Rounds: 5,
		BudgetCycles: 30, BufferRounds: 3, Policy: faults.PolicyDropOldest,
	}, 31)
	if err != nil {
		t.Fatal(err)
	}
	a, err := cell.Run(ctx, 256)
	if err != nil {
		t.Fatal(err)
	}
	b, err := cell.Run(ctx, 256)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("repeated Run diverged:\n%+v\n%+v", a, b)
	}
	if a.Shots != 256 || a.Stats.Rounds == 0 {
		t.Fatalf("result = %+v", a)
	}
}
