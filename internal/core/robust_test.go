package core

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"xqsim/internal/compiler"
	"xqsim/internal/faults"
	"xqsim/internal/ftqc"
)

// testFaults is a fault environment harsh enough that every injection
// path (stall, drop, retransmit) fires within a few shots.
func testFaults() faults.Config {
	return faults.Config{
		StallProb:     0.8,
		StallFactor:   4,
		BufferRounds:  3,
		Policy:        faults.PolicyDropOldest,
		LinkErrorProb: 0.3,
		LinkRetries:   3,
	}
}

func TestRunShotsPanicRecovery(t *testing.T) {
	// A worker panic must not kill the process: the run reports an error
	// naming the failing shot and its replay seed instead.
	shotHook = func(s int) {
		if s == 3 {
			panic("injected test panic")
		}
	}
	defer func() { shotHook = nil }()

	circ := compiler.SinglePPR("Z", ftqc.AnglePi4)
	_, _, err := RunShots(context.Background(), circ, 3, 0, 8, 5)
	if err == nil {
		t.Fatal("expected the injected panic to surface as an error")
	}
	if !strings.Contains(err.Error(), "shot 3 panicked") {
		t.Fatalf("error does not name the failing shot: %v", err)
	}
	if want := fmt.Sprintf("seed %d", ShotSeed(5, 3)); !strings.Contains(err.Error(), want) {
		t.Fatalf("error does not carry the replay seed (%s): %v", want, err)
	}
}

func TestRunShotsPanicErrorDeterministic(t *testing.T) {
	// With several panicking shots, the lowest-indexed one is reported
	// regardless of worker scheduling.
	shotHook = func(s int) {
		if s == 2 || s == 5 || s == 9 {
			panic("injected test panic")
		}
	}
	defer func() { shotHook = nil }()

	circ := compiler.SinglePPR("Z", ftqc.AnglePi4)
	for i := 0; i < 3; i++ {
		_, _, err := RunShots(context.Background(), circ, 3, 0, 12, 5)
		if err == nil || !strings.Contains(err.Error(), "shot 2 panicked") {
			t.Fatalf("run %d: want the lowest failing shot (2), got %v", i, err)
		}
	}
}

func TestRunShotsCancellation(t *testing.T) {
	// A canceled context aborts the run promptly and leaks no worker
	// goroutines.
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	circ := compiler.SinglePPR("ZZ", ftqc.AnglePi8).SubstituteStabilizer()
	_, _, err := RunShots(ctx, circ, 5, 0.001, 256, 7)
	if err == nil {
		t.Fatal("canceled run returned no error")
	}
	if !strings.Contains(err.Error(), context.Canceled.Error()) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}

	// Workers exit once they observe the cancellation; give the runtime a
	// moment to reap them before comparing.
	for i := 0; i < 100; i++ {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
}

func TestRunShotsWatchdogTimeout(t *testing.T) {
	// An absurdly small per-shot watchdog must trip on the first
	// per-instruction check and surface as a deadline error naming the
	// shot.
	circ := compiler.SinglePPR("Z", ftqc.AnglePi4)
	opts := RunOptions{ShotTimeout: time.Nanosecond}
	_, _, err := RunShotsOpt(context.Background(), circ, 3, 0, 4, 5, opts)
	if err == nil {
		t.Fatal("watchdog did not trip")
	}
	if !strings.Contains(err.Error(), context.DeadlineExceeded.Error()) {
		t.Fatalf("error = %v, want deadline exceeded", err)
	}
	if !strings.Contains(err.Error(), "shot 0") {
		t.Fatalf("error does not name the shot: %v", err)
	}
}

func TestRunShotsFaultDeterminism(t *testing.T) {
	// Same seed, same fault config: bit-identical distributions and fault
	// totals across runs, despite parallel shot scheduling.
	circ := compiler.SinglePPR("ZZ", ftqc.AnglePi8).SubstituteStabilizer()
	opts := RunOptions{Faults: testFaults()}
	distA, mA, err := RunShotsOpt(context.Background(), circ, 3, 0.001, 48, 17, opts)
	if err != nil {
		t.Fatal(err)
	}
	distB, mB, err := RunShotsOpt(context.Background(), circ, 3, 0.001, 48, 17, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range distA {
		if distA[i] != distB[i] {
			t.Fatalf("distribution differs at %d: %v vs %v", i, distA[i], distB[i])
		}
	}
	if mA.Faults != mB.Faults {
		t.Fatalf("fault totals differ: %+v vs %+v", mA.Faults, mB.Faults)
	}
	if mA.Faults.StallWindows == 0 || mA.Faults.DroppedRounds == 0 || mA.Faults.Retransmits == 0 {
		t.Fatalf("harsh fault config fired nothing: %+v", mA.Faults)
	}
}

func TestRunShotsInvalidFaultConfig(t *testing.T) {
	circ := compiler.SinglePPR("Z", ftqc.AnglePi4)
	opts := RunOptions{Faults: faults.Config{StallProb: 2}}
	if _, _, err := RunShotsOpt(context.Background(), circ, 3, 0, 1, 1, opts); err == nil {
		t.Fatal("invalid fault config accepted")
	}
}

func TestLogicalErrorRateFaultsDeterministic(t *testing.T) {
	fcfg := faults.Config{StallProb: 1, StallFactor: 4, BufferRounds: 3, Policy: faults.PolicyDropOldest}
	a, totA, err := LogicalErrorRateFaults(context.Background(), 3, 0.01, 3, 80, 31, fcfg)
	if err != nil {
		t.Fatal(err)
	}
	b, totB, err := LogicalErrorRateFaults(context.Background(), 3, 0.01, 3, 80, 31, fcfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b || totA != totB {
		t.Fatalf("identically-seeded fault runs differ: %v/%+v vs %v/%+v", a, totA, b, totB)
	}
	if totA.DroppedRounds == 0 {
		t.Fatalf("certain stalls against a one-window buffer dropped nothing: %+v", totA)
	}
}

func TestLogicalErrorRateDegradesUnderDrops(t *testing.T) {
	// Dropped syndrome rounds leave their detection events uncorrected, so
	// the logical error rate under heavy stalls must not beat the
	// fault-free rate (and should clearly exceed it at this operating
	// point).
	const trials = 300
	clean, err := LogicalErrorRate(context.Background(), 3, 0.015, 3, trials, 41)
	if err != nil {
		t.Fatal(err)
	}
	faulty, _, err := LogicalErrorRateFaults(context.Background(), 3, 0.015, 3, trials, 41,
		faults.Config{StallProb: 1, StallFactor: 4, BufferRounds: 3, Policy: faults.PolicyDropOldest})
	if err != nil {
		t.Fatal(err)
	}
	if faulty < clean {
		t.Fatalf("rate improved under dropped rounds: clean %v, faulty %v", clean, faulty)
	}
}

func TestLogicalErrorRateCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := LogicalErrorRate(ctx, 3, 0.01, 3, 100, 7); err == nil {
		t.Fatal("canceled trial pool returned no error")
	}
}
