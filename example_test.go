package xqsim_test

import (
	"fmt"

	"xqsim"
)

// The headline result: the paper's final control-processor design —
// ERSFQ PSU/TCU/EDU with all four optimizations — sustains tens of
// thousands of physical qubits.
func ExampleSystem_MaxQubits() {
	rates := xqsim.MeasureRates(15, 0.001, xqsim.SchemePatchSliding, 1)
	final := xqsim.FutureSystem(15, true, true)
	n := final.MaxQubits(rates)
	fmt.Println(n > 50000, n < 60000)
	// Output: true true
}

// Scalability reports expose the four metrics and the violated
// constraints.
func ExampleSystem_Evaluate() {
	rates := xqsim.MeasureRates(15, 0.001, xqsim.SchemeRoundRobin, 1)
	current := xqsim.CurrentSystem(15, false)
	rep := current.Evaluate(5000, rates)
	fmt.Println(rep.OK())
	fmt.Println(rep.Violations())
	// Output:
	// false
	// [error-decoding-latency 300K-4K-transfer instruction-bandwidth]
}

// Gates lower to Pauli product rotations and compile to the 64-bit QISA.
func ExampleNewBuilder() {
	circ := xqsim.NewBuilder("demo", 2).H(0).CX(0, 1).Circuit()
	res, _ := xqsim.Compile(circ)
	fmt.Println(len(circ.Rotations), "rotations")
	fmt.Println(res.Program[0])
	// Output:
	// 12 rotations
	// LQI off=0 targets=0:zero,1:zero
}

// The assembler round-trips the textual QISA form.
func ExampleAssemble() {
	prog, _ := xqsim.Assemble("MERGE_INFO paulis=0:Z,4:Z,5:Z\nRUN_ESM")
	fmt.Print(xqsim.Disassemble(prog))
	// Output:
	// MERGE_INFO off=0 paulis=0:Z,4:Z,5:Z
	// RUN_ESM
}

// XQ-estimator answers frequency/power/area questions per unit and
// technology.
func ExampleEstimateUnit() {
	scale := xqsim.ScaleFor(10000, 15)
	opts := xqsim.DefaultEstimatorOptions(15)
	rsfq := xqsim.EstimateUnit(xqsim.UnitPSU, scale, xqsim.RSFQ, opts)
	ersfq := xqsim.EstimateUnit(xqsim.UnitPSU, scale, xqsim.ERSFQ, opts)
	fmt.Println(rsfq.StaticW > 0, ersfq.StaticW == 0)
	// Output: true true
}
