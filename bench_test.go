// Benchmarks regenerating every table and figure of the paper's
// evaluation section. Each benchmark runs the corresponding experiment
// driver and reports the headline quantities as custom metrics, so
//
//	go test -bench=. -benchmem
//
// prints the measured reproduction next to its timing. EXPERIMENTS.md
// records the measured-vs-paper comparison in full.
package xqsim_test

import (
	"context"
	"testing"

	"xqsim"
)

// mustResult adapts a driver's (Result, error) return for benchmark
// loops (drivers are ctx-aware and can fail since the fault-injection
// work): the returned closure fails the benchmark on error.
func mustResult(b *testing.B) func(xqsim.ExperimentResult, error) xqsim.ExperimentResult {
	return func(r xqsim.ExperimentResult, err error) xqsim.ExperimentResult {
		b.Helper()
		if err != nil {
			b.Fatal(err)
		}
		return r
	}
}

// reportAnchors publishes an experiment's measured anchors as benchmark
// metrics (paper values live in EXPERIMENTS.md).
func reportAnchors(b *testing.B, r xqsim.ExperimentResult, keys map[string]string) {
	b.Helper()
	for key, metric := range keys {
		if v, ok := r.Anchors[key]; ok {
			b.ReportMetric(v[1], metric)
		} else {
			b.Fatalf("anchor %q missing", key)
		}
	}
}

// BenchmarkFig5_ScalabilityConstraints regenerates Fig. 5: the success
// rate of a d=7 random-PPR workload on the current 300 K CMOS system
// collapsing at the instruction-bandwidth, decode-latency, and
// 300K-4K-transfer constraint points.
func BenchmarkFig5_ScalabilityConstraints(b *testing.B) {
	var r xqsim.ExperimentResult
	must := mustResult(b)
	for i := 0; i < b.N; i++ {
		r = must(xqsim.Fig5(context.Background(), 1))
	}
	reportAnchors(b, r, map[string]string{
		"bandwidth red line (Gbps)": "redline-Gbps",
		"decode red line (ns)":      "redline-ns",
	})
}

// BenchmarkFig10_EstimatorValidationMITLL regenerates Fig. 10: the RSFQ
// model's frequency prediction versus the MITLL RTL-simulation
// references (paper: max error 3.7%).
func BenchmarkFig10_EstimatorValidationMITLL(b *testing.B) {
	var r xqsim.ExperimentResult
	for i := 0; i < b.N; i++ {
		r = xqsim.Fig10()
	}
	reportAnchors(b, r, map[string]string{"max frequency error (%)": "max-err-%"})
}

// BenchmarkFig12_EstimatorValidationAIST regenerates Fig. 12: frequency,
// power and area versus the AIST post-layout references (paper: max
// errors 12.8% / 8.9% / 6.3%).
func BenchmarkFig12_EstimatorValidationAIST(b *testing.B) {
	var r xqsim.ExperimentResult
	for i := 0; i < b.N; i++ {
		r = xqsim.Fig12()
	}
	reportAnchors(b, r, map[string]string{
		"max freq error (%)":  "freq-err-%",
		"max power error (%)": "power-err-%",
		"max area error (%)":  "area-err-%",
	})
}

// BenchmarkTable3_FunctionalValidation regenerates Table 3: the total
// variation distance between the noisy physical-level pipeline and the
// exact logical reference for the five benchmarks (paper: dTV <= 0.0533
// at 2048 shots; 256 shots per iteration here keep the bench tractable —
// use xqsweep -table 3 -shots 2048 for the full run).
func BenchmarkTable3_FunctionalValidation(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		rows, err := xqsim.Table3(context.Background(), 256, 3)
		if err != nil {
			b.Fatal(err)
		}
		worst = 0
		for _, r := range rows {
			if r.DTV > worst {
				worst = r.DTV
			}
		}
	}
	b.ReportMetric(worst, "max-dTV")
}

// BenchmarkFig14_CurrentSystem regenerates Fig. 14: decode-latency limits
// of the baseline (paper: ~250) and Optimization #1 (paper: ~9,800), and
// the 300K-4K transfer limit (paper: ~1,700).
func BenchmarkFig14_CurrentSystem(b *testing.B) {
	var r xqsim.ExperimentResult
	must := mustResult(b)
	for i := 0; i < b.N; i++ {
		r = must(xqsim.Fig14(context.Background(), 1))
	}
	reportAnchors(b, r, map[string]string{
		"decode limit baseline":   "decode-limit-qubits",
		"decode limit with Opt#1": "opt1-limit-qubits",
		"300K-4K transfer limit":  "transfer-limit-qubits",
	})
}

// BenchmarkFig16_UnitBreakdown regenerates Fig. 16: the PSU+TCU share of
// inter-unit traffic (paper: 98.1%) and the RSFQ power split motivating
// Guideline #1.
func BenchmarkFig16_UnitBreakdown(b *testing.B) {
	var r xqsim.ExperimentResult
	must := mustResult(b)
	for i := 0; i < b.N; i++ {
		r = must(xqsim.Fig16(context.Background(), 1))
	}
	reportAnchors(b, r, map[string]string{
		"PSU+TCU transfer share (%)":       "transfer-share-%",
		"PSU+TCU RSFQ power share (%)":     "power-share-%",
		"other units RSFQ power share (%)": "others-share-%",
	})
}

// BenchmarkFig17_NearFutureSystem regenerates Fig. 17: RSFQ limits 970 ->
// 4,600 with Optimizations #2/#3 and 4 K CMOS limits 1,400 -> 9,800 with
// voltage scaling.
func BenchmarkFig17_NearFutureSystem(b *testing.B) {
	var r xqsim.ExperimentResult
	must := mustResult(b)
	for i := 0; i < b.N; i++ {
		r = must(xqsim.Fig17(context.Background(), 1))
	}
	reportAnchors(b, r, map[string]string{
		"RSFQ power limit (baseline)":          "rsfq-base-qubits",
		"RSFQ limit with Opts #2,#3":           "rsfq-opt-qubits",
		"4K CMOS power limit (baseline)":       "cmos-base-qubits",
		"4K CMOS overall with voltage scaling": "cmos-vs-qubits",
	})
}

// BenchmarkFig18_PSUTCUOptimizations regenerates Fig. 18's ablations: the
// PSU mask-generator sharing factor (paper: 5.5x power), the TCU buffer
// simplification (paper: 4.0x), and the 4 K CMOS voltage scaling
// (paper: 15.3x).
func BenchmarkFig18_PSUTCUOptimizations(b *testing.B) {
	var r xqsim.ExperimentResult
	for i := 0; i < b.N; i++ {
		r = xqsim.Fig18()
	}
	reportAnchors(b, r, map[string]string{
		"Opt#2 PSU power reduction (x)": "psu-factor",
		"Opt#3 TCU power reduction (x)": "tcu-factor",
		"4K CMOS voltage scaling (x)":   "vs-factor",
	})
}

// BenchmarkFig19_FutureSystem regenerates Fig. 19: the ERSFQ system's
// power/decode limits with and without the 4 K EDU, the patch-sliding
// EDU power factor (paper: 18.8x), and the final ~59,000-qubit design.
func BenchmarkFig19_FutureSystem(b *testing.B) {
	var r xqsim.ExperimentResult
	must := mustResult(b)
	for i := 0; i < b.N; i++ {
		r = must(xqsim.Fig19(context.Background(), 1))
	}
	reportAnchors(b, r, map[string]string{
		"ERSFQ power limit (EDU at 300K)": "power-limit-qubits",
		"power limit with ERSFQ EDU":      "edu4k-power-qubits",
		"decode limit with ERSFQ EDU":     "edu4k-decode-qubits",
		"final sustainable scale":         "final-qubits",
	})
}

// BenchmarkPipelineShot measures one full-stack functional shot
// (compile -> microarchitecture -> noisy backend -> decode) of the
// 3-logical-qubit PPR benchmark at d=3.
func BenchmarkPipelineShot(b *testing.B) {
	circ := xqsim.SinglePPR("ZZZ", xqsim.AnglePi8).SubstituteStabilizer()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := xqsim.RunShots(context.Background(), circ, 3, 0.001, 1, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScalabilityEvaluation measures one scalability-report
// evaluation at the final design's scale.
func BenchmarkScalabilityEvaluation(b *testing.B) {
	rates := xqsim.MeasureRates(15, 0.001, xqsim.SchemePatchSliding, 1)
	sys := xqsim.FutureSystem(15, true, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = sys.Evaluate(59000, rates)
	}
}

// BenchmarkMeasureRates measures the reference-scale pipeline run behind
// every sweep.
func BenchmarkMeasureRates(b *testing.B) {
	// Uncached: every iteration runs the full pipeline (varying the seed
	// would slowly fill the process-wide memo cache across calibration
	// runs and skew the measurement).
	for i := 0; i < b.N; i++ {
		_ = xqsim.MeasureRatesUncached(15, 0.001, xqsim.SchemePriority, int64(i))
	}
}

func BenchmarkMeasureRatesCached(b *testing.B) {
	// Fixed key: after the first fill every call is a memo hit, the case
	// the sweep grids see when figures share an operating point.
	xqsim.MeasureRates(15, 0.001, xqsim.SchemePriority, 424243)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = xqsim.MeasureRates(15, 0.001, xqsim.SchemePriority, 424243)
	}
}

// BenchmarkAblationMaskSharing sweeps Optimization #2's sharing degree
// (PSU power per qubit and the RSFQ scaling limit vs the knee at the
// paper's 14x point).
func BenchmarkAblationMaskSharing(b *testing.B) {
	var r xqsim.ExperimentResult
	must := mustResult(b)
	for i := 0; i < b.N; i++ {
		r = must(xqsim.AblationMaskSharing(context.Background(), 1))
	}
	reportAnchors(b, r, map[string]string{"limit at the paper's 14x point": "limit-at-14x"})
}

// BenchmarkAblationCodeDistance sweeps the code distance of the final
// design (Table 4 fixes d=15).
func BenchmarkAblationCodeDistance(b *testing.B) {
	var r xqsim.ExperimentResult
	must := mustResult(b)
	for i := 0; i < b.N; i++ {
		r = must(xqsim.AblationCodeDistance(context.Background(), 1))
	}
	reportAnchors(b, r, map[string]string{"physical scale at d=15": "scale-at-d15"})
}

// BenchmarkSensitivity runs the Section-6.2 parameter study (scale vs 4 K
// cooling budget).
func BenchmarkSensitivity(b *testing.B) {
	var r xqsim.ExperimentResult
	must := mustResult(b)
	for i := 0; i < b.N; i++ {
		r = must(xqsim.Sensitivity(context.Background(), 1))
	}
	reportAnchors(b, r, map[string]string{"scale at 1.5W (Table 4)": "scale-at-1.5W"})
}

// BenchmarkMSDDistillation runs the 15-to-1 magic state distillation
// self-check (5 logical qubits, 31 rotations) through the full stack —
// the heaviest single workload in the suite.
func BenchmarkMSDDistillation(b *testing.B) {
	circ := xqsim.MSD15To1SelfCheck()
	var dtv float64
	for i := 0; i < b.N; i++ {
		var err error
		dtv, _, _, err = xqsim.ValidateCircuit(context.Background(), circ, 3, 0.001, 64, int64(i))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(dtv, "dTV")
}

// BenchmarkThresholdStudy measures the surface-code memory's logical
// error rate across distances — the decoder+backend validation loop.
func BenchmarkThresholdStudy(b *testing.B) {
	var r xqsim.ExperimentResult
	must := mustResult(b)
	for i := 0; i < b.N; i++ {
		r = must(xqsim.ThresholdStudy(context.Background(), 200, 5))
	}
	reportAnchors(b, r, map[string]string{
		"d=7 suppression vs d=3 at p=1% (x)": "suppression-x",
	})
}

// BenchmarkCircuitThresholdStudy runs the circuit-level counterpart:
// every cell compiles the gate-level memory experiment and draws its
// shots through the bit-sliced batch frame sampler (64 per word), so
// the whole 15-cell d<=7 grid at 2,000 shots per cell stays cheaper
// than the 200-trial phenomenological study above.
func BenchmarkCircuitThresholdStudy(b *testing.B) {
	var r xqsim.ExperimentResult
	must := mustResult(b)
	for i := 0; i < b.N; i++ {
		r = must(xqsim.CircuitThresholdStudy(context.Background(), 2000, 5))
	}
	reportAnchors(b, r, map[string]string{
		"d=7 suppression vs d=3 at p=0.1% (x)": "suppression-x",
	})
}
